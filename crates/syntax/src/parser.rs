//! Recursive-descent parser for the modpeg grammar-module language.

use modpeg_core::{
    AltAst, AnchorPos, Attrs, ClauseOp, Decl, Diagnostic, Diagnostics, Expr, ModuleAst,
    ModuleSet, ProdClause, ProdKind, SrcSpan,
};

use crate::lexer::{lex, Tok, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_span(&self) -> SrcSpan {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(msg).with_span(self.peek_span())
    }

    fn expect(&mut self, tok: &Tok) -> PResult<Token> {
        if self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.peek() {
            Tok::Ident(_) => match self.bump().tok {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!("peeked ident"),
            },
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    /// `a.b.c` — dotted module names.
    fn dotted_name(&mut self, what: &str) -> PResult<String> {
        let mut name = self.ident(what)?;
        while self.peek() == &Tok::Dot {
            self.bump();
            name.push('.');
            name.push_str(&self.ident(what)?);
        }
        Ok(name)
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn parse_module(&mut self) -> PResult<ModuleAst> {
        let start = self.peek_span();
        if !self.at_ident("module") {
            return Err(self.err(format!("expected `module`, found {}", self.peek())));
        }
        self.bump();
        let name = self.dotted_name("module name")?;
        let mut module = ModuleAst::new(name);
        module.span = start;
        if self.peek() == &Tok::LParen {
            self.bump();
            loop {
                module.params.push(self.ident("module parameter")?);
                match self.peek() {
                    Tok::Comma => {
                        self.bump();
                    }
                    Tok::RParen => {
                        self.bump();
                        break;
                    }
                    other => {
                        return Err(self.err(format!("expected `,` or `)`, found {other}")))
                    }
                }
            }
        }
        self.expect(&Tok::Semi)?;

        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if s == "module" => break,
                Tok::Ident(s) if s == "import" => {
                    let span = self.peek_span();
                    self.bump();
                    let m = self.dotted_name("module name")?;
                    self.expect(&Tok::Semi)?;
                    module.decls.push(Decl::Import { module: m, span });
                }
                Tok::Ident(s) if s == "instantiate" => {
                    let span = self.peek_span();
                    self.bump();
                    let m = self.dotted_name("module name")?;
                    let mut args = Vec::new();
                    if self.peek() == &Tok::LParen {
                        self.bump();
                        loop {
                            args.push(self.dotted_name("argument module")?);
                            match self.peek() {
                                Tok::Comma => {
                                    self.bump();
                                }
                                Tok::RParen => {
                                    self.bump();
                                    break;
                                }
                                other => {
                                    return Err(
                                        self.err(format!("expected `,` or `)`, found {other}"))
                                    )
                                }
                            }
                        }
                    }
                    let alias = if self.at_ident("as") {
                        self.bump();
                        Some(self.ident("instance alias")?)
                    } else {
                        None
                    };
                    self.expect(&Tok::Semi)?;
                    module.decls.push(Decl::Instantiate {
                        module: m,
                        args,
                        alias,
                        span,
                    });
                }
                Tok::Ident(s) if s == "modify" => {
                    let span = self.peek_span();
                    self.bump();
                    let target = self.dotted_name("module name")?;
                    self.expect(&Tok::Semi)?;
                    module.decls.push(Decl::Modify { target, span });
                }
                Tok::Ident(s) if s == "option" => {
                    let span = self.peek_span();
                    self.bump();
                    loop {
                        let name = self.ident("option name")?;
                        let value = if self.peek() == &Tok::LParen {
                            self.bump();
                            let v = match self.bump().tok {
                                Tok::Str(s) => s,
                                other => {
                                    return Err(
                                        self.err(format!("expected option string, found {other}"))
                                    )
                                }
                            };
                            self.expect(&Tok::RParen)?;
                            Some(v)
                        } else {
                            None
                        };
                        module.decls.push(Decl::Option { name, value, span });
                        match self.peek() {
                            Tok::Comma => {
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                    self.expect(&Tok::Semi)?;
                }
                Tok::Ident(_) => {
                    module.productions.push(self.parse_clause()?);
                }
                other => return Err(self.err(format!("expected a declaration, found {other}"))),
            }
        }
        Ok(module)
    }

    fn parse_clause(&mut self) -> PResult<ProdClause> {
        let span = self.peek_span();
        // Collect leading identifiers: attributes, optional kind, name.
        let mut words: Vec<String> = Vec::new();
        while let Tok::Ident(_) = self.peek() {
            words.push(self.ident("production name")?);
        }
        let op = match self.peek() {
            Tok::Eq => ClauseOp::Define,
            Tok::ColonEq => ClauseOp::Override,
            Tok::PlusEq => ClauseOp::Append,
            Tok::MinusEq => ClauseOp::Remove,
            other => {
                return Err(self.err(format!(
                    "expected `=`, `:=`, `+=` or `-=` after production name, found {other}"
                )))
            }
        };
        self.bump();
        let Some(name) = words.pop() else {
            return Err(self.err("expected a production name"));
        };
        let mut attrs = Attrs::default();
        let mut kind: Option<ProdKind> = None;
        for w in &words {
            match w.as_str() {
                "public" => attrs.public = true,
                "transient" => attrs.transient = true,
                "inline" => attrs.inline = true,
                "memo" => attrs.memo = true,
                "stateful" => attrs.stateful = true,
                "withLocation" => attrs.with_location = true,
                "void" | "String" | "Node" => {
                    if kind.is_some() {
                        return Err(Diagnostic::error(format!(
                            "production `{name}` declares two kinds"
                        ))
                        .with_span(span));
                    }
                    kind = Some(match w.as_str() {
                        "void" => ProdKind::Void,
                        "String" => ProdKind::Text,
                        _ => ProdKind::Node,
                    });
                }
                other => {
                    return Err(Diagnostic::error(format!(
                        "unknown attribute `{other}` on production `{name}`"
                    ))
                    .with_span(span))
                }
            }
        }
        // A plain definition defaults to Node; modifications inherit.
        let kind = match (op, kind) {
            (ClauseOp::Define, None) => Some(ProdKind::Node),
            (_, k) => k,
        };

        let mut clause = ProdClause {
            attrs,
            kind,
            name,
            op,
            alts: Vec::new(),
            removed: Vec::new(),
            anchor: None,
            span,
        };
        // `P += before <L> …` / `P += after <L> …` — the keyword form is
        // only taken when a `<` follows (otherwise `before` is an ordinary
        // nonterminal reference).
        if op == ClauseOp::Append {
            let anchor_pos = match self.peek() {
                Tok::Ident(s) if s == "before" => Some(AnchorPos::Before),
                Tok::Ident(s) if s == "after" => Some(AnchorPos::After),
                _ => None,
            };
            if anchor_pos.is_some() && self.tokens[self.pos + 1].tok == Tok::Lt {
                self.bump();
                self.expect(&Tok::Lt)?;
                let label = self.ident("anchor label")?;
                self.expect(&Tok::Gt)?;
                clause.anchor = anchor_pos.map(|p| (p, label));
            }
        }
        if op == ClauseOp::Remove {
            loop {
                self.expect(&Tok::Lt)?;
                clause.removed.push(self.ident("alternative label")?);
                self.expect(&Tok::Gt)?;
                match self.peek() {
                    Tok::Comma => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.expect(&Tok::Semi)?;
            return Ok(clause);
        }
        loop {
            clause.alts.push(self.parse_alt()?);
            match self.peek() {
                Tok::Slash => {
                    self.bump();
                }
                Tok::Semi => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(self.err(format!("expected `/` or `;`, found {other}")));
                }
            }
        }
        Ok(clause)
    }

    fn parse_alt(&mut self) -> PResult<AltAst> {
        if self.peek() == &Tok::Ellipsis {
            self.bump();
            return Ok(AltAst::Splice);
        }
        let label = if self.peek() == &Tok::Lt {
            self.bump();
            let l = self.ident("alternative label")?;
            self.expect(&Tok::Gt)?;
            Some(l)
        } else {
            None
        };
        let expr = self.parse_seq()?;
        Ok(AltAst::Alt { label, expr })
    }

    fn starts_expr(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Ident(_)
                | Tok::Str(_)
                | Tok::Class(_)
                | Tok::Dot
                | Tok::LParen
                | Tok::Amp
                | Tok::Bang
                | Tok::Dollar
                | Tok::Percent
        )
    }

    fn parse_choice(&mut self) -> PResult<Expr<String>> {
        let mut arms = vec![self.parse_seq()?];
        while self.peek() == &Tok::Slash {
            self.bump();
            arms.push(self.parse_seq()?);
        }
        Ok(Expr::choice(arms))
    }

    fn parse_seq(&mut self) -> PResult<Expr<String>> {
        let mut items = Vec::new();
        while self.starts_expr() {
            items.push(self.parse_prefixed()?);
        }
        Ok(Expr::seq(items))
    }

    fn parse_prefixed(&mut self) -> PResult<Expr<String>> {
        match self.peek() {
            Tok::Amp => {
                self.bump();
                Ok(Expr::And(Box::new(self.parse_prefixed()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_prefixed()?)))
            }
            Tok::Dollar => {
                self.bump();
                Ok(Expr::Capture(Box::new(self.parse_prefixed()?)))
            }
            _ => self.parse_suffixed(),
        }
    }

    fn parse_suffixed(&mut self) -> PResult<Expr<String>> {
        let mut e = self.parse_primary()?;
        loop {
            e = match self.peek() {
                Tok::Question => {
                    self.bump();
                    Expr::Opt(Box::new(e))
                }
                Tok::Star => {
                    self.bump();
                    Expr::Star(Box::new(e))
                }
                Tok::Plus => {
                    self.bump();
                    Expr::Plus(Box::new(e))
                }
                _ => return Ok(e),
            };
        }
    }

    fn parse_primary(&mut self) -> PResult<Expr<String>> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.parse_choice()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Str(s) => {
                self.bump();
                Ok(if s.is_empty() {
                    Expr::Empty
                } else {
                    Expr::literal(s)
                })
            }
            Tok::Class(c) => {
                self.bump();
                Ok(Expr::Class(c))
            }
            Tok::Dot => {
                self.bump();
                Ok(Expr::Any)
            }
            Tok::Percent => {
                self.bump();
                let name = self.ident("builtin name")?;
                self.expect(&Tok::LParen)?;
                let inner = Box::new(self.parse_choice()?);
                self.expect(&Tok::RParen)?;
                match name.as_str() {
                    "void" => Ok(Expr::Void(inner)),
                    "define" => Ok(Expr::StateDefine(inner)),
                    "isdef" => Ok(Expr::StateIsDef(inner)),
                    "isndef" => Ok(Expr::StateIsNotDef(inner)),
                    "scope" => Ok(Expr::StateScope(inner)),
                    other => Err(self.err(format!("unknown builtin `%{other}`"))),
                }
            }
            Tok::Ident(_) => Ok(Expr::Ref(self.ident("nonterminal")?)),
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

/// Parses a source file containing exactly one module.
///
/// # Errors
///
/// Returns located diagnostics on lexical or syntax errors.
pub fn parse_module(src: &str) -> Result<ModuleAst, Diagnostics> {
    let modules = parse_modules(src)?;
    match modules.len() {
        1 => Ok(modules.into_iter().next().expect("len checked")),
        n => Err(Diagnostics::from(Diagnostic::error(format!(
            "expected exactly one module, found {n}"
        )))),
    }
}

/// Parses a source file containing one or more modules.
///
/// # Errors
///
/// Returns located diagnostics on lexical or syntax errors.
pub fn parse_modules(src: &str) -> Result<Vec<ModuleAst>, Diagnostics> {
    let tokens = lex(src).map_err(Diagnostics::from)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while parser.peek() != &Tok::Eof {
        out.push(parser.parse_module().map_err(Diagnostics::from)?);
    }
    if out.is_empty() {
        return Err(Diagnostics::from(Diagnostic::error(
            "input contains no modules",
        )));
    }
    Ok(out)
}

/// Parses several sources (each holding one or more modules) into a
/// [`ModuleSet`].
///
/// # Errors
///
/// Returns diagnostics on parse errors or duplicate module names.
pub fn parse_module_set<'a>(
    sources: impl IntoIterator<Item = &'a str>,
) -> Result<ModuleSet, Diagnostics> {
    let mut set = ModuleSet::new();
    for src in sources {
        for module in parse_modules(src)? {
            set.add(module).map_err(Diagnostics::from)?;
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_and_params() {
        let m = parse_module("module java.core.Expr(Spacing, Literal);").unwrap();
        assert_eq!(m.name, "java.core.Expr");
        assert_eq!(m.params, vec!["Spacing", "Literal"]);
    }

    #[test]
    fn parses_decls() {
        let m = parse_module(
            "module m;\n\
             import util.Spacing;\n\
             instantiate generic.List(util.Spacing) as L;\n\
             modify base.Core;\n\
             option withLocation, parser(\"java\");",
        )
        .unwrap();
        assert_eq!(m.decls.len(), 5);
        assert!(m.is_modification());
        assert_eq!(m.modify_target(), Some("base.Core"));
        let opts: Vec<_> = m.options().collect();
        assert_eq!(opts, vec![("withLocation", None), ("parser", Some("java"))]);
    }

    #[test]
    fn parses_production_with_attrs_kind_labels() {
        let m = parse_module(
            "module m;\n\
             public transient String Word = <Simple> $[a-z]+ / <Hard> \"x\" ;",
        )
        .unwrap();
        let p = &m.productions[0];
        assert!(p.attrs.public && p.attrs.transient);
        assert_eq!(p.kind, Some(ProdKind::Text));
        assert_eq!(p.name, "Word");
        assert_eq!(p.alts.len(), 2);
        match &p.alts[0] {
            AltAst::Alt { label, expr } => {
                assert_eq!(label.as_deref(), Some("Simple"));
                // `$` applies to the whole suffixed expression: $([a-z]+).
                assert_eq!(expr.to_string(), "$([a-z]+)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_kind_is_node() {
        let m = parse_module("module m; S = \"x\" ;").unwrap();
        assert_eq!(m.productions[0].kind, Some(ProdKind::Node));
    }

    #[test]
    fn modification_clauses() {
        let m = parse_module(
            "module ext;\n\
             modify base;\n\
             Statement += <For> \"for\" / ... ;\n\
             Statement -= <Do>, <While> ;\n\
             Keyword := \"foreach\" / ... ;",
        )
        .unwrap();
        assert_eq!(m.productions.len(), 3);
        assert_eq!(m.productions[0].op, ClauseOp::Append);
        assert!(matches!(m.productions[0].alts[1], AltAst::Splice));
        assert_eq!(m.productions[1].op, ClauseOp::Remove);
        assert_eq!(m.productions[1].removed, vec!["Do", "While"]);
        assert_eq!(m.productions[2].op, ClauseOp::Override);
        // Modification clauses inherit kind unless stated.
        assert_eq!(m.productions[0].kind, None);
    }

    #[test]
    fn anchored_insertion_parses() {
        let m = parse_module(
            "module e; modify b;\n\
             X += after <A> <B> \"b\" ;\n\
             Y += before <Q> \"y\" ;\n\
             Z += before \"z\" ;", // `before` here is a nonterminal!
        )
        .unwrap();
        assert_eq!(
            m.productions[0].anchor,
            Some((modpeg_core::AnchorPos::After, "A".into()))
        );
        assert_eq!(
            m.productions[1].anchor,
            Some((modpeg_core::AnchorPos::Before, "Q".into()))
        );
        assert_eq!(m.productions[2].anchor, None);
        let AltAst::Alt { expr, .. } = &m.productions[2].alts[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "before \"z\"");
    }

    #[test]
    fn expression_operators_nest() {
        let m = parse_module("module m; E = !\"a\" (B / \"c\")* $(.?) %isdef(Id) ;").unwrap();
        let p = &m.productions[0];
        let AltAst::Alt { expr, .. } = &p.alts[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "!\"a\" (B / \"c\")* $(.?) %isdef(Id)");
    }

    #[test]
    fn empty_alternative_is_epsilon() {
        let m = parse_module("module m; void Opt = \"a\" / ;").unwrap();
        let p = &m.productions[0];
        assert_eq!(p.alts.len(), 2);
        let AltAst::Alt { expr, .. } = &p.alts[1] else {
            panic!()
        };
        assert_eq!(*expr, Expr::Empty);
    }

    #[test]
    fn char_literal_is_string() {
        let m = parse_module("module m; void P = 'x' ;").unwrap();
        let AltAst::Alt { expr, .. } = &m.productions[0].alts[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "\"x\"");
    }

    #[test]
    fn multiple_modules_in_one_source() {
        let ms = parse_modules(
            "module a; A = \"a\" ;\n\
             module b; import a; B = A ;",
        )
        .unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1].decls.len(), 1);
    }

    #[test]
    fn module_set_rejects_duplicates() {
        let err = parse_module_set(["module a; A = \"a\";", "module a; B = \"b\";"]).unwrap_err();
        assert!(err.to_string().contains("duplicate module"));
    }

    #[test]
    fn error_messages_are_located_and_specific() {
        let err = parse_module("module m; P = ) ;").unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
        let err = parse_module("module m; P ~ x ;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"), "{err}");
        let err = parse_module("module m; frobnicate Node P = \"x\" ;").unwrap_err();
        assert!(err.to_string().contains("unknown attribute `frobnicate`"), "{err}");
        let err = parse_module("module m; P = %bogus(\"x\") ;").unwrap_err();
        assert!(err.to_string().contains("unknown builtin"), "{err}");
        let err = parse_module("module m; void String P = \"x\" ;").unwrap_err();
        assert!(err.to_string().contains("two kinds"), "{err}");
    }

    #[test]
    fn end_to_end_elaboration_from_text() {
        let set = parse_module_set([
            "module base;\n\
             public Statement = <If> \"if\" Cond / <Halt> \"halt\" ;\n\
             void Cond = \"(\" [a-z]+ \")\" ;",
            "module ext;\n\
             modify base;\n\
             Statement += <Loop> \"loop\" Cond ;",
            "module main;\n\
             import base;\n\
             import ext;\n\
             public Program = Statement+ !. ;",
        ])
        .unwrap();
        let g = set.elaborate("main", None).unwrap();
        let stmt = g.production(g.find("base.Statement").unwrap());
        assert_eq!(stmt.alts.len(), 3);
        assert_eq!(g.production(g.root()).name, "main.Program");
    }
}
