//! Randomized test: the formatter is a fixpoint and preserves structure on
//! *randomized* modules, not just the shipped library.
//!
//! Modules are generated from a seeded PRNG (`modpeg_workload::rng`) so the
//! suite needs no external property-testing dependency; every case is
//! reproducible from its seed.

use modpeg_core::{
    AltAst, AnchorPos, Attrs, CharClass, ClauseOp, Decl, Expr, ModuleAst, ProdClause, ProdKind,
    SrcSpan,
};
use modpeg_workload::rng::StdRng;

type E = Expr<String>;

fn ident(rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push(rng.gen_range(b'A'..=b'Z') as char);
    for _ in 0..rng.gen_range(0usize..=5) {
        let c = match rng.gen_range(0u8..3) {
            0 => rng.gen_range(b'a'..=b'z'),
            1 => rng.gen_range(b'A'..=b'Z'),
            _ => rng.gen_range(b'0'..=b'9'),
        };
        s.push(c as char);
    }
    s
}

fn lower_ident(rng: &mut StdRng, max_extra: usize) -> String {
    let mut s = String::new();
    s.push(rng.gen_range(b'a'..=b'z') as char);
    for _ in 0..rng.gen_range(0usize..=max_extra) {
        let c = if rng.gen_ratio(3, 4) {
            rng.gen_range(b'a'..=b'z')
        } else {
            rng.gen_range(b'0'..=b'9')
        };
        s.push(c as char);
    }
    s
}

fn expr(rng: &mut StdRng, depth: u32) -> E {
    let leaf = |rng: &mut StdRng| match rng.gen_range(0u8..5) {
        0 => E::Ref(ident(rng)),
        1 => {
            let lits = ["a", "xy", "+", "\"", "\\", "\n"];
            E::literal(lits[rng.gen_range(0..lits.len())])
        }
        2 => E::Any,
        3 => E::Class(CharClass::from_ranges(vec![('a', 'z'), ('-', '-')], false)),
        _ => E::Class(CharClass::from_ranges(vec![('\n', '\n')], true)),
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Weighted: 3 parts leaf, 1 part each combinator (total 11).
    match rng.gen_range(0u8..11) {
        0..=2 => leaf(rng),
        3 => {
            let n = rng.gen_range(1usize..3);
            E::seq((0..n).map(|_| expr(rng, depth - 1)).collect())
        }
        4 => {
            let n = rng.gen_range(2usize..4);
            E::choice((0..n).map(|_| expr(rng, depth - 1)).collect())
        }
        5 => E::Opt(Box::new(expr(rng, depth - 1))),
        6 => E::Star(Box::new(expr(rng, depth - 1))),
        7 => E::Not(Box::new(expr(rng, depth - 1))),
        8 => E::Capture(Box::new(expr(rng, depth - 1))),
        9 => E::Void(Box::new(expr(rng, depth - 1))),
        _ => E::StateIsDef(Box::new(expr(rng, depth - 1))),
    }
}

fn clause(rng: &mut StdRng) -> ProdClause {
    let name = ident(rng);
    let op = [
        ClauseOp::Define,
        ClauseOp::Override,
        ClauseOp::Append,
        ClauseOp::Remove,
    ][rng.gen_range(0..4usize)];
    let n_alts = rng.gen_range(1usize..3);
    let mut seen = std::collections::HashSet::new();
    let mut alts: Vec<AltAst> = (0..n_alts)
        .map(|_| {
            let label = if rng.gen_ratio(1, 2) {
                Some(ident(rng))
            } else {
                None
            };
            AltAst::Alt {
                // Deduplicate labels (parser requires uniqueness only at
                // elaboration, but keep modules sane).
                label: label.filter(|l| seen.insert(l.clone())),
                expr: expr(rng, 2),
            }
        })
        .collect();
    let removed: Vec<String> = (0..rng.gen_range(1usize..3)).map(|_| ident(rng)).collect();
    let anchor = if rng.gen_ratio(1, 2) {
        let pos = if rng.gen_bool() {
            AnchorPos::Before
        } else {
            AnchorPos::After
        };
        Some((pos, ident(rng)))
    } else {
        None
    };
    let transient = rng.gen_bool();
    let splice = rng.gen_bool();
    if splice && matches!(op, ClauseOp::Override | ClauseOp::Append) && anchor.is_none() {
        alts.push(AltAst::Splice);
    }
    ProdClause {
        attrs: Attrs {
            transient,
            ..Attrs::default()
        },
        kind: if op == ClauseOp::Define {
            Some(ProdKind::Node)
        } else {
            None
        },
        name,
        op,
        alts: if op == ClauseOp::Remove { vec![] } else { alts },
        removed: if op == ClauseOp::Remove { removed } else { vec![] },
        anchor: if op == ClauseOp::Append { anchor } else { None },
        span: SrcSpan::none(),
    }
}

fn module(rng: &mut StdRng) -> ModuleAst {
    let mut name = lower_ident(rng, 5);
    for _ in 0..rng.gen_range(0u8..3) {
        name.push('.');
        name.push_str(&lower_ident(rng, 4));
    }
    let params: Vec<String> = (0..rng.gen_range(0usize..3)).map(|_| ident(rng)).collect();
    let is_mod = rng.gen_bool();
    let mut clauses: Vec<ProdClause> = (0..rng.gen_range(0usize..4)).map(|_| clause(rng)).collect();

    let mut m = ModuleAst::new(name);
    m.params = params;
    if is_mod {
        m.decls.push(Decl::Modify {
            target: "base".into(),
            span: SrcSpan::none(),
        });
    } else {
        // Non-modification modules may only define.
        for c in &mut clauses {
            c.op = ClauseOp::Define;
            c.kind = Some(ProdKind::Node);
            c.removed.clear();
            c.anchor = None;
            c.alts.retain(|a| !matches!(a, AltAst::Splice));
            if c.alts.is_empty() {
                c.alts.push(AltAst::Alt {
                    label: None,
                    expr: E::literal("x"),
                });
            }
        }
    }
    m.decls.push(Decl::Import {
        module: "other".into(),
        span: SrcSpan::none(),
    });
    m.productions = clauses;
    m
}

#[test]
fn format_parse_format_is_a_fixpoint() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x464D54);
        let m = module(&mut rng);
        let once = modpeg_syntax::format_module(&m);
        let reparsed = modpeg_syntax::parse_modules(&once)
            .unwrap_or_else(|e| panic!("formatted module does not reparse: {e}\n{once}"));
        assert_eq!(reparsed.len(), 1, "seed {seed}");
        let twice = modpeg_syntax::format_module(&reparsed[0]);
        assert_eq!(once, twice, "not a fixpoint (seed {seed}):\n{once}");
        // Structure is preserved (spans aside, which format discards).
        assert_eq!(
            reparsed[0].productions.len(),
            m.productions.len(),
            "seed {seed}"
        );
        assert_eq!(reparsed[0].name, m.name, "seed {seed}");
        assert_eq!(reparsed[0].params, m.params, "seed {seed}");
    }
}
