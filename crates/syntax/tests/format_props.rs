//! Property test: the formatter is a fixpoint and preserves structure on
//! *randomized* modules, not just the shipped library.

use modpeg_core::{AltAst, AnchorPos, Attrs, ClauseOp, Decl, Expr, ModuleAst, ProdClause, ProdKind, SrcSpan};
use proptest::prelude::*;

type E = Expr<String>;

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,5}"
}

fn expr(depth: u32) -> BoxedStrategy<E> {
    let leaf = prop_oneof![
        ident().prop_map(E::Ref),
        proptest::sample::select(vec!["a", "xy", "+", "\"", "\\", "\n"]).prop_map(E::literal),
        Just(E::Any),
        Just(E::Class(modpeg_core::CharClass::from_ranges(
            vec![('a', 'z'), ('-', '-')],
            false
        ))),
        Just(E::Class(modpeg_core::CharClass::from_ranges(
            vec![('\n', '\n')],
            true
        ))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = expr(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => proptest::collection::vec(expr(depth - 1), 1..3).prop_map(E::seq),
        1 => proptest::collection::vec(expr(depth - 1), 2..4).prop_map(E::choice),
        1 => inner.clone().prop_map(|e| E::Opt(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Star(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Not(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Capture(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Void(Box::new(e))),
        1 => inner.prop_map(|e| E::StateIsDef(Box::new(e))),
    ]
    .boxed()
}

fn clause() -> impl Strategy<Value = ProdClause> {
    (
        ident(),
        proptest::sample::select(vec![
            ClauseOp::Define,
            ClauseOp::Override,
            ClauseOp::Append,
            ClauseOp::Remove,
        ]),
        proptest::collection::vec((proptest::option::of(ident()), expr(2)), 1..3),
        proptest::collection::vec(ident(), 1..3),
        proptest::option::of((
            proptest::sample::select(vec![AnchorPos::Before, AnchorPos::After]),
            ident(),
        )),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(name, op, alts, removed, anchor, transient, splice)| {
            let mut seen = std::collections::HashSet::new();
            let mut alts: Vec<AltAst> = alts
                .into_iter()
                .map(|(label, expr)| AltAst::Alt {
                    // Deduplicate labels (parser requires uniqueness only at
                    // elaboration, but keep modules sane).
                    label: label.filter(|l| seen.insert(l.clone())),
                    expr,
                })
                .collect();
            if splice && matches!(op, ClauseOp::Override | ClauseOp::Append) && anchor.is_none()
            {
                alts.push(AltAst::Splice);
            }
            ProdClause {
                attrs: Attrs {
                    transient,
                    ..Attrs::default()
                },
                kind: if op == ClauseOp::Define {
                    Some(ProdKind::Node)
                } else {
                    None
                },
                name,
                op,
                alts: if op == ClauseOp::Remove { vec![] } else { alts },
                removed: if op == ClauseOp::Remove { removed } else { vec![] },
                anchor: if op == ClauseOp::Append { anchor } else { None },
                span: SrcSpan::none(),
            }
        })
}

fn module() -> impl Strategy<Value = ModuleAst> {
    (
        "[a-z][a-z0-9]{0,5}(\\.[a-z][a-z0-9]{0,4}){0,2}",
        proptest::collection::vec(ident(), 0..3),
        any::<bool>(),
        proptest::collection::vec(clause(), 0..4),
    )
        .prop_map(|(name, params, is_mod, mut clauses)| {
            let mut m = ModuleAst::new(name);
            m.params = params;
            if is_mod {
                m.decls.push(Decl::Modify {
                    target: "base".into(),
                    span: SrcSpan::none(),
                });
            } else {
                // Non-modification modules may only define.
                for c in &mut clauses {
                    c.op = ClauseOp::Define;
                    c.kind = Some(ProdKind::Node);
                    c.removed.clear();
                    c.anchor = None;
                    c.alts.retain(|a| !matches!(a, AltAst::Splice));
                    if c.alts.is_empty() {
                        c.alts.push(AltAst::Alt {
                            label: None,
                            expr: E::literal("x"),
                        });
                    }
                }
            }
            m.decls.push(Decl::Import {
                module: "other".into(),
                span: SrcSpan::none(),
            });
            m.productions = clauses;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn format_parse_format_is_a_fixpoint(m in module()) {
        let once = modpeg_syntax::format_module(&m);
        let reparsed = modpeg_syntax::parse_modules(&once)
            .unwrap_or_else(|e| panic!("formatted module does not reparse: {e}\n{once}"));
        prop_assert_eq!(reparsed.len(), 1);
        let twice = modpeg_syntax::format_module(&reparsed[0]);
        prop_assert_eq!(&once, &twice, "not a fixpoint:\n{}", once);
        // Structure is preserved (spans aside, which format discards).
        prop_assert_eq!(reparsed[0].productions.len(), m.productions.len());
        prop_assert_eq!(&reparsed[0].name, &m.name);
        prop_assert_eq!(&reparsed[0].params, &m.params);
    }
}
