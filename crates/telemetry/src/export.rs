//! Renderers over a [`TelemetryReport`]: Chrome `trace_event` JSON,
//! collapsed-stack flamegraph input, and memo-table heatmaps.
//!
//! All exporters are pure functions of the report — collection and
//! rendering never overlap, so rendering cost is off the parse path.

use std::fmt::Write;

use crate::json::escape_json;
use crate::{EventKind, TelemetryReport};

/// Renders the report as Chrome `trace_event` JSON (the object form,
/// loadable in `chrome://tracing` and Perfetto).
///
/// Production spans become complete (`"ph":"X"`) events paired from the
/// stream with an explicit stack; memo hits, evictions, aborts, and
/// session reuse become instant (`"ph":"i"`) events. Timestamps are
/// microseconds with nanosecond precision, as the format specifies.
pub fn chrome_trace(report: &TelemetryReport) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"modpeg\"}}",
    );
    // Open spans: (prod, start_ns).
    let mut stack: Vec<(u32, u64)> = Vec::new();
    for event in &report.events {
        match event.kind {
            EventKind::Enter { prod, .. } => stack.push((prod, event.at_ns)),
            EventKind::Exit {
                prod,
                pos,
                end,
                matched,
                ..
            } => {
                if stack.last().map(|s| s.0) != Some(prod) {
                    continue; // truncated stream; never mis-pair
                }
                let (_, start) = stack.pop().expect("matched above");
                let _ = write!(
                    out,
                    ",{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"{}\",\
                     \"cat\":\"production\",\"ts\":{},\"dur\":{},\
                     \"args\":{{\"pos\":{pos},\"end\":{end},\"matched\":{matched}}}}}",
                    escape_json(report.name_of(prod)),
                    us(start),
                    us(event.at_ns.saturating_sub(start)),
                );
            }
            EventKind::MemoHit { prod, pos, matched, .. } => {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\
                     \"name\":\"memo hit: {}\",\"cat\":\"memo\",\"ts\":{},\
                     \"args\":{{\"pos\":{pos},\"matched\":{matched}}}}}",
                    escape_json(report.name_of(prod)),
                    us(event.at_ns),
                );
            }
            EventKind::MemoEvict { pos, columns } => {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"p\",\
                     \"name\":\"memo eviction\",\"cat\":\"governor\",\"ts\":{},\
                     \"args\":{{\"pos\":{pos},\"columns\":{columns}}}}}",
                    us(event.at_ns),
                );
            }
            EventKind::GovAbort { reason } => {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"p\",\
                     \"name\":\"abort: {reason}\",\"cat\":\"governor\",\"ts\":{}}}",
                    us(event.at_ns),
                );
            }
            EventKind::SessionReuse {
                reused,
                invalidated,
                shifted,
            } => {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"p\",\
                     \"name\":\"session reuse\",\"cat\":\"session\",\"ts\":{},\
                     \"args\":{{\"reused\":{reused},\"invalidated\":{invalidated},\
                     \"shifted\":{shifted}}}}}",
                    us(event.at_ns),
                );
            }
            // Probe/store traffic and tick totals are aggregate-only
            // signals; they would swamp a timeline view.
            EventKind::MemoProbe { .. }
            | EventKind::MemoStore { .. }
            | EventKind::Backtrack { .. }
            | EventKind::GovTicks { .. } => {}
        }
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"input_len\":{},\"events\":{},\"dropped\":{},\"sample\":{}}}}}",
        report.input_len,
        report.events.len(),
        report.dropped,
        report.sample
    );
    out
}

/// Microseconds with nanosecond precision, as a JSON number.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the report as collapsed stacks (`a;b;c 1234` lines, one per
/// distinct production stack), value = exclusive nanoseconds — the input
/// format of `flamegraph.pl` and every compatible renderer.
pub fn folded_stacks(report: &TelemetryReport) -> String {
    // (stack path → exclusive ns), deterministic order for stable output.
    let mut weights: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    // Open spans: (prod, start_ns, child_ns).
    let mut stack: Vec<(u32, u64, u64)> = Vec::new();
    let path = |stack: &[(u32, u64, u64)]| -> String {
        let mut s = String::from("modpeg");
        for (prod, _, _) in stack {
            s.push(';');
            // Semicolons and spaces are structural in the folded format.
            s.push_str(&report.name_of(*prod).replace([';', ' '], "_"));
        }
        s
    };
    for event in &report.events {
        match event.kind {
            EventKind::Enter { prod, .. } => stack.push((prod, event.at_ns, 0)),
            EventKind::Exit { prod, .. } => {
                if stack.last().map(|s| s.0) != Some(prod) {
                    continue;
                }
                let key = path(&stack);
                let (_, start, child_ns) = stack.pop().expect("matched above");
                let dur = event.at_ns.saturating_sub(start);
                if let Some((_, _, parent_child)) = stack.last_mut() {
                    *parent_child += dur;
                }
                *weights.entry(key).or_insert(0) += dur.saturating_sub(child_ns);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (path, ns) in weights {
        if ns > 0 {
            let _ = writeln!(out, "{path} {ns}");
        }
    }
    out
}

/// One production's row of a memo heatmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatmapRow {
    /// Production name.
    pub name: String,
    /// Memo stores per offset bucket (column occupancy).
    pub stores: Vec<u64>,
    /// Memo hits per offset bucket.
    pub hits: Vec<u64>,
}

/// A memo-table heatmap: store/hit counts per production × input-offset
/// bucket, derived from the memo traffic in a report.
#[derive(Debug, Clone)]
pub struct MemoHeatmap {
    /// Rows, one per production with any memo traffic.
    pub rows: Vec<HeatmapRow>,
    /// Width of each offset bucket in bytes.
    pub bucket_bytes: u32,
    /// Number of offset buckets.
    pub buckets: usize,
}

impl MemoHeatmap {
    /// Builds the heatmap with `buckets` offset buckets (clamped to at
    /// least 1; offsets beyond `input_len` land in the last bucket).
    pub fn from_report(report: &TelemetryReport, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let bucket_bytes = (report.input_len / buckets as u32).max(1);
        let bucket_of = |pos: u32| -> usize { ((pos / bucket_bytes) as usize).min(buckets - 1) };
        // Dense production index, REP_HELPER mapped to a trailing row.
        let mut rows: Vec<Option<HeatmapRow>> = vec![None; report.names.len() + 1];
        fn touch<'a>(
            rows: &'a mut [Option<HeatmapRow>],
            report: &TelemetryReport,
            buckets: usize,
            prod: u32,
        ) -> &'a mut HeatmapRow {
            let i = if prod == crate::REP_HELPER {
                rows.len() - 1
            } else {
                (prod as usize).min(rows.len() - 1)
            };
            rows[i].get_or_insert_with(|| HeatmapRow {
                name: report.name_of(prod).to_string(),
                stores: vec![0; buckets],
                hits: vec![0; buckets],
            })
        }
        for event in &report.events {
            match event.kind {
                EventKind::MemoStore { prod, pos, .. } => {
                    touch(&mut rows, report, buckets, prod).stores[bucket_of(pos)] += 1;
                }
                EventKind::MemoHit { prod, pos, .. } => {
                    touch(&mut rows, report, buckets, prod).hits[bucket_of(pos)] += 1;
                }
                _ => {}
            }
        }
        MemoHeatmap {
            rows: rows.into_iter().flatten().collect(),
            bucket_bytes,
            buckets,
        }
    }

    /// Text rendering: one density row per production, darkest character
    /// = most memo stores in that offset bucket.
    pub fn to_text(&self) -> String {
        const SCALE: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        let max = self
            .rows
            .iter()
            .flat_map(|r| r.stores.iter())
            .copied()
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "memo heatmap: stores per production x input offset \
             ({} buckets x {} bytes, max {max}/cell)",
            self.buckets, self.bucket_bytes
        );
        let _ = writeln!(out, "scale: \"{}\"", String::from_utf8_lossy(SCALE));
        for row in &self.rows {
            let total: u64 = row.stores.iter().sum();
            let hits: u64 = row.hits.iter().sum();
            let mut cells = String::with_capacity(self.buckets);
            for &v in &row.stores {
                let idx = if max == 0 {
                    0
                } else {
                    // Ceiling scaling so any non-zero cell is visible.
                    ((v * (SCALE.len() as u64 - 1)).div_ceil(max)) as usize
                };
                cells.push(SCALE[idx.min(SCALE.len() - 1)] as char);
            }
            let _ = writeln!(
                out,
                "{:<24} |{cells}| {total} stores, {hits} hits",
                truncate_name(&row.name, 24)
            );
        }
        out
    }

    /// CSV rendering: `production,bucket_start,stores,hits` per non-empty
    /// cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("production,bucket_start,stores,hits\n");
        for row in &self.rows {
            for (i, (&stores, &hits)) in row.stores.iter().zip(&row.hits).enumerate() {
                if stores == 0 && hits == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{},{},{stores},{hits}",
                    csv_field(&row.name),
                    i as u32 * self.bucket_bytes
                );
            }
        }
        out
    }
}

fn truncate_name(name: &str, width: usize) -> String {
    if name.chars().count() <= width {
        name.to_string()
    } else {
        let cut: String = name.chars().take(width - 1).collect();
        format!("{cut}…")
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_json, Telemetry, REP_HELPER};

    fn report() -> TelemetryReport {
        let t = Telemetry::collector(1024);
        t.set_names(vec!["Root".into(), "Leaf".into()]);
        t.set_input_len(100);
        let root = t.enter(0, 0, 0);
        let leaf = t.enter(1, 10, 1);
        t.memo_store(1, 10, true);
        t.exit(leaf, 1, 10, 1, 20, true);
        t.memo_hit(1, 90, 1, true);
        t.memo_store(REP_HELPER, 50, true);
        t.memo_evict(60, 4);
        t.gov_abort("fuel-exhausted");
        t.session_reuse(3, 1, 7);
        t.exit(root, 0, 0, 0, 100, true);
        t.take_report()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_spans() {
        let json = chrome_trace(&report());
        validate_json(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"Leaf\""));
        assert!(json.contains("memo hit: Leaf"));
        assert!(json.contains("abort: fuel-exhausted"));
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn chrome_trace_tolerates_truncation() {
        let t = Telemetry::collector(1);
        let tok = t.enter(0, 0, 0);
        t.exit(tok, 0, 0, 0, 5, true); // dropped
        let json = chrome_trace(&t.take_report());
        validate_json(&json).expect("truncated trace must still be valid JSON");
    }

    #[test]
    fn folded_stacks_nest_and_weigh() {
        let folded = folded_stacks(&report());
        let lines: Vec<&str> = folded.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            let (path, weight) = line.rsplit_once(' ').expect("path weight");
            assert!(path.starts_with("modpeg"), "{line}");
            weight.parse::<u64>().expect("numeric weight");
        }
        // The nested Leaf span appears under Root.
        assert!(folded.contains("modpeg;Root;Leaf"), "{folded}");
    }

    #[test]
    fn heatmap_buckets_and_renders() {
        let hm = MemoHeatmap::from_report(&report(), 10);
        assert_eq!(hm.bucket_bytes, 10);
        let leaf = hm.rows.iter().find(|r| r.name == "Leaf").expect("leaf row");
        assert_eq!(leaf.stores[1], 1); // store at offset 10
        assert_eq!(leaf.hits[9], 1); // hit at offset 90
        let rep = hm
            .rows
            .iter()
            .find(|r| r.name == "(repetition)")
            .expect("helper row");
        assert_eq!(rep.stores[5], 1);
        let text = hm.to_text();
        assert!(text.contains("memo heatmap"), "{text}");
        assert!(text.contains("Leaf"), "{text}");
        let csv = hm.to_csv();
        assert!(csv.starts_with("production,bucket_start,stores,hits\n"));
        assert!(csv.contains("Leaf,10,1,0"), "{csv}");
        assert!(csv.contains("Leaf,90,0,1"), "{csv}");
    }

    #[test]
    fn heatmap_handles_empty_input_and_reports() {
        let t = Telemetry::collector(8);
        let hm = MemoHeatmap::from_report(&t.take_report(), 0);
        assert_eq!(hm.buckets, 1);
        assert!(hm.rows.is_empty());
        assert!(!hm.to_text().is_empty());
    }

    #[test]
    fn microsecond_formatting_keeps_ns_precision() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_007), "1000.007");
    }
}
