//! A minimal JSON well-formedness checker.
//!
//! The workspace is deliberately dependency-free, so the exporter tests
//! cannot lean on serde; this hand-rolled recursive-descent validator
//! (RFC 8259 grammar, no value materialization) is what asserts that
//! every JSON exporter emits something a real consumer will load.

/// Validates that `text` is exactly one well-formed JSON value.
///
/// # Errors
///
/// A human-readable description of the first violation, with its byte
/// offset.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut v = Validator {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.bytes.len() {
        return Err(format!("trailing data at byte {}", v.pos));
    }
    Ok(())
}

/// Nesting ceiling: the validator recurses per container, so hostile
/// depth must fail cleanly instead of overflowing the stack.
const MAX_DEPTH: u32 = 512;

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Validator<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte {b:#04x} at {}", self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(b) if b.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at byte {}",
                                            self.pos
                                        ))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("unescaped control byte {b:#04x} at {}", self.pos))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("expected digit at byte {}", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("expected fraction digit at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("expected exponent digit at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Shared by every JSON-emitting exporter.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "  false ",
            "0",
            "-12.5e+3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            r#"{"a": 1, "b": [true, null], "c": {"d": "e"}}"#,
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "nul",
            "01",
            "1.",
            "[1,]",
            "{\"a\":}",
            "{'a': 1}",
            "\"unterminated",
            "\"bad \u{1} control\"",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn depth_ceiling_fails_cleanly() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(validate_json(&deep).is_err());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
