//! # modpeg-telemetry
//!
//! Structured parse telemetry for every modpeg engine: a bounded
//! span/event collector behind a cheap [`Telemetry`] handle, a
//! per-production [`MetricsRegistry`], and exporters for Chrome
//! `trace_event` JSON, collapsed-stack flamegraphs, Prometheus-style
//! text, and memo-table heatmaps.
//!
//! The design splits into two phases so the parser hot path stays hot:
//!
//! * **collection** — engines call the [`Telemetry`] hook methods at
//!   fixed points (production enter/exit, memo probe/hit/store/evict,
//!   governor aborts, session memo-reuse). A disabled handle reduces
//!   every hook to a single branch on a cached flag; an enabled handle
//!   appends a fixed-size [`TimedEvent`] to a pre-bounded buffer.
//! * **analysis** — after the parse, [`Telemetry::take_report`] yields a
//!   [`TelemetryReport`], from which [`MetricsRegistry::from_report`]
//!   aggregates histograms and the [`export`] functions render views.
//!
//! The disabled fast path is compile-time provably allocation-free:
//! [`Telemetry::disabled`] is a `const fn` (see the `const` assertion in
//! this crate), so a disabled handle cannot own heap state at all.
//!
//! ## Example
//!
//! ```
//! use modpeg_telemetry::{Telemetry, MetricsRegistry};
//!
//! let telem = Telemetry::collector(1024);
//! telem.set_names(vec!["Word".to_string()]);
//! let tok = telem.enter(0, 0, 0);
//! telem.memo_probe(0, 0);
//! telem.memo_store(0, 0, true);
//! telem.exit(tok, 0, 0, 0, 5, true);
//! let report = telem.take_report();
//! assert_eq!(report.events.len(), 4);
//! let registry = MetricsRegistry::from_report(&report);
//! assert_eq!(registry.prods[0].evals, 1);
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

mod json;
mod metrics;

pub mod export;

pub use json::validate_json;
pub use metrics::{
    MetricsRegistry, ProdMetrics, Totals, BACKTRACK_BUCKET, N_BUCKETS, TIME_BUCKET_NS,
};

/// Production index used for the anonymous repetition/option helper
/// "productions" that the unoptimized desugarings memoize at expression
/// granularity. Reported as `(repetition)` by name lookups.
pub const REP_HELPER: u32 = u32::MAX;

/// Event-kind selection flags for [`Telemetry::with_mask`].
///
/// Collection filters let a caller that only needs a chronological trace
/// (spans + memo hits) keep its event cap for exactly those kinds instead
/// of spending it on memo traffic.
pub mod mask {
    /// Production enter/exit spans.
    pub const SPANS: u32 = 1 << 0;
    /// Memo-table hits (answer served).
    pub const MEMO_HITS: u32 = 1 << 1;
    /// Memo-table probes, stores, and evictions.
    pub const MEMO_TRAFFIC: u32 = 1 << 2;
    /// Backtracking events (an alternative failed after consuming input).
    pub const BACKTRACK: u32 = 1 << 3;
    /// Governor events (aborts, end-of-run tick accounting).
    pub const GOVERNOR: u32 = 1 << 4;
    /// Incremental-session events (memo reuse across edits).
    pub const SESSION: u32 = 1 << 5;
    /// Everything.
    pub const ALL: u32 = !0;
    /// What a chronological parse trace needs: spans and memo hits, the
    /// classic Rats! verbose mode.
    pub const TRACE: u32 = SPANS | MEMO_HITS;
}

/// What happened at one instant of a parse.
///
/// Positions are byte offsets into the input; `prod` indexes the compiled
/// grammar's production table ([`REP_HELPER`] for anonymous repetition
/// helpers); `depth` is the production-nesting depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A production application began evaluating (memo miss or unmemoized).
    Enter {
        /// Production index.
        prod: u32,
        /// Input offset.
        pos: u32,
        /// Production-nesting depth.
        depth: u32,
    },
    /// The matching end of an [`EventKind::Enter`].
    Exit {
        /// Production index.
        prod: u32,
        /// Input offset the application started at.
        pos: u32,
        /// Production-nesting depth (same as the matching enter).
        depth: u32,
        /// End offset of the match (equal to `pos` on failure).
        end: u32,
        /// Whether the application matched.
        matched: bool,
    },
    /// A memo-table lookup was performed.
    MemoProbe {
        /// Production index.
        prod: u32,
        /// Input offset.
        pos: u32,
    },
    /// A memo-table lookup found a valid stored answer.
    MemoHit {
        /// Production index.
        prod: u32,
        /// Input offset.
        pos: u32,
        /// Production-nesting depth.
        depth: u32,
        /// Whether the stored answer was a match.
        matched: bool,
    },
    /// A memo entry was written.
    MemoStore {
        /// Production index.
        prod: u32,
        /// Input offset.
        pos: u32,
        /// Whether the stored answer was a match.
        matched: bool,
    },
    /// A memo-budget eviction pass freed columns.
    MemoEvict {
        /// Input offset the eviction kept hot (columns left of it went).
        pos: u32,
        /// Memo columns freed.
        columns: u32,
    },
    /// An ordered-choice alternative failed after consuming input.
    Backtrack {
        /// Production whose alternatives were being tried.
        prod: u32,
        /// Input offset of the choice point.
        pos: u32,
        /// Production-nesting depth.
        depth: u32,
    },
    /// A governed parse aborted.
    GovAbort {
        /// Stable abort name (`ParseAbort::name`).
        reason: &'static str,
    },
    /// End-of-run governor accounting: evaluation steps ticked and
    /// stride-boundary refills (ticks are far too hot to record one by
    /// one, so the run reports its totals as a single event).
    GovTicks {
        /// Evaluation steps ticked.
        ticks: u64,
        /// Stride refills (budget-poll boundaries crossed).
        refills: u64,
    },
    /// An incremental session reused memo columns across an edit.
    SessionReuse {
        /// Columns carried over from the previous parse.
        reused: u64,
        /// Columns discarded because their lookahead overlapped the edit.
        invalidated: u64,
        /// Carried-over entries translated to post-edit coordinates.
        shifted: u64,
    },
}

impl EventKind {
    /// The [`mask`] bit this event kind is collected under.
    pub fn mask_bit(&self) -> u32 {
        match self {
            EventKind::Enter { .. } | EventKind::Exit { .. } => mask::SPANS,
            EventKind::MemoHit { .. } => mask::MEMO_HITS,
            EventKind::MemoProbe { .. }
            | EventKind::MemoStore { .. }
            | EventKind::MemoEvict { .. } => mask::MEMO_TRAFFIC,
            EventKind::Backtrack { .. } => mask::BACKTRACK,
            EventKind::GovAbort { .. } | EventKind::GovTicks { .. } => mask::GOVERNOR,
            EventKind::SessionReuse { .. } => mask::SESSION,
        }
    }
}

/// One collected event with its timestamp (nanoseconds since the
/// collector was created).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Nanoseconds since collection began.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Everything one collection run produced: the event stream plus the
/// context needed to interpret it (production names, input length,
/// sampling rate, and how many events the cap discarded).
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Production names, indexed by the events' `prod` fields.
    pub names: Vec<String>,
    /// Length of the parsed input in bytes.
    pub input_len: u32,
    /// The collected events, chronologically.
    pub events: Vec<TimedEvent>,
    /// Events discarded because the buffer cap was reached.
    pub dropped: u64,
    /// Span sampling rate that was in effect (1 = every span).
    pub sample: u32,
    /// Nanoseconds from collector creation to report extraction.
    pub wall_ns: u64,
}

impl TelemetryReport {
    /// The name of a production index ( `(repetition)` for the anonymous
    /// helper slots, `?` for out-of-range indices).
    pub fn name_of(&self, prod: u32) -> &str {
        if prod == REP_HELPER {
            return "(repetition)";
        }
        self.names
            .get(prod as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

/// The mutable collection state behind an enabled [`Telemetry`] handle.
#[derive(Debug)]
struct Collector {
    epoch: Instant,
    events: Vec<TimedEvent>,
    cap: usize,
    dropped: u64,
    sample: u32,
    spans_seen: u64,
    names: Vec<String>,
    input_len: u32,
}

impl Collector {
    fn new(cap: usize) -> Self {
        Collector {
            epoch: Instant::now(),
            events: Vec::new(),
            cap,
            dropped: 0,
            sample: 1,
            spans_seen: 0,
            names: Vec::new(),
            input_len: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn record(&mut self, kind: EventKind) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(TimedEvent {
            at_ns: self.now_ns(),
            kind,
        });
    }

    fn take_report(&mut self) -> TelemetryReport {
        let report = TelemetryReport {
            names: self.names.clone(),
            input_len: self.input_len,
            events: std::mem::take(&mut self.events),
            dropped: std::mem::take(&mut self.dropped),
            sample: self.sample,
            wall_ns: self.now_ns(),
        };
        self.spans_seen = 0;
        report
    }
}

/// Ticket returned by [`Telemetry::enter`] and consumed by
/// [`Telemetry::exit`], so that span sampling skips both ends of a span
/// as a unit (any subset of properly nested spans where each span keeps
/// or drops *both* ends is itself properly nested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "pass the token to Telemetry::exit so sampling stays paired"]
pub struct SpanToken(u8);

impl SpanToken {
    /// Token for a span that is not being recorded.
    pub const SKIP: SpanToken = SpanToken(0);
    const RECORD: SpanToken = SpanToken(1);
}

/// The engine-facing telemetry handle.
///
/// Cloning shares the underlying collector (it is reference-counted), so
/// the handle an engine keeps and the handle the caller extracts the
/// report from observe the same events. Handles are single-threaded by
/// design — a parse run is; cross-thread aggregation (the batch engine)
/// merges `Stats` instead.
///
/// The disabled handle is `const`-constructible and therefore provably
/// allocation-free; every hook on it is a single branch on the cached
/// `enabled` flag.
#[derive(Debug, Clone)]
pub struct Telemetry {
    enabled: bool,
    mask: u32,
    inner: Option<Rc<RefCell<Collector>>>,
}

// Compile-time proof that the disabled fast path performs no allocation:
// a `const` item is evaluated at compile time, where heap allocation is
// impossible — so a disabled handle cannot own heap state.
const _: Telemetry = Telemetry::disabled();

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A handle that records nothing; every hook is a single branch.
    pub const fn disabled() -> Self {
        Telemetry {
            enabled: false,
            mask: 0,
            inner: None,
        }
    }

    /// A handle collecting up to `cap` events (further events are counted
    /// as dropped, never silently lost), all kinds, every span.
    pub fn collector(cap: usize) -> Self {
        Telemetry {
            enabled: true,
            mask: mask::ALL,
            inner: Some(Rc::new(RefCell::new(Collector::new(cap)))),
        }
    }

    /// Restricts collection to the event kinds in `mask` (see [`mask`]).
    pub fn with_mask(mut self, mask: u32) -> Self {
        self.mask = mask;
        self
    }

    /// Records only one in `n` production spans (point events — memo
    /// traffic, aborts, session reuse — are never sampled, so hit-rates
    /// and heatmaps stay exact). `n = 1` or `0` records every span.
    pub fn with_sampling(self, n: u32) -> Self {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sample = n.max(1);
        }
        self
    }

    /// Whether this handle records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Installs production names for the report (call once per run, only
    /// does work on an enabled handle).
    pub fn set_names(&self, names: Vec<String>) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().names = names;
        }
    }

    /// Records the input length for the report (heatmap bucketing).
    pub fn set_input_len(&self, len: u32) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().input_len = len;
        }
    }

    /// Extracts everything collected so far, leaving the collector empty
    /// (names and configuration are retained for further collection).
    pub fn take_report(&self) -> TelemetryReport {
        match &self.inner {
            None => TelemetryReport::default(),
            Some(inner) => inner.borrow_mut().take_report(),
        }
    }

    /// A production application began evaluating. Returns the token to
    /// hand back to [`Telemetry::exit`].
    #[inline]
    pub fn enter(&self, prod: u32, pos: u32, depth: u32) -> SpanToken {
        if !self.enabled {
            return SpanToken::SKIP;
        }
        self.enter_slow(prod, pos, depth)
    }

    #[cold]
    fn enter_slow(&self, prod: u32, pos: u32, depth: u32) -> SpanToken {
        if self.mask & mask::SPANS == 0 {
            return SpanToken::SKIP;
        }
        let Some(inner) = &self.inner else {
            return SpanToken::SKIP;
        };
        let mut c = inner.borrow_mut();
        c.spans_seen += 1;
        if c.sample > 1 && c.spans_seen % u64::from(c.sample) != 0 {
            return SpanToken::SKIP;
        }
        c.record(EventKind::Enter { prod, pos, depth });
        SpanToken::RECORD
    }

    /// The end of a production application whose [`Telemetry::enter`]
    /// returned `tok`.
    #[inline]
    pub fn exit(&self, tok: SpanToken, prod: u32, pos: u32, depth: u32, end: u32, matched: bool) {
        if !self.enabled {
            return;
        }
        self.exit_slow(tok, prod, pos, depth, end, matched);
    }

    #[cold]
    fn exit_slow(&self, tok: SpanToken, prod: u32, pos: u32, depth: u32, end: u32, matched: bool) {
        if tok != SpanToken::RECORD {
            return;
        }
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record(EventKind::Exit {
                prod,
                pos,
                depth,
                end,
                matched,
            });
        }
    }

    /// A memo-table lookup was performed.
    #[inline]
    pub fn memo_probe(&self, prod: u32, pos: u32) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::MemoProbe { prod, pos });
    }

    /// A memo-table lookup found a valid stored answer.
    #[inline]
    pub fn memo_hit(&self, prod: u32, pos: u32, depth: u32, matched: bool) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::MemoHit {
            prod,
            pos,
            depth,
            matched,
        });
    }

    /// A memo entry was written.
    #[inline]
    pub fn memo_store(&self, prod: u32, pos: u32, matched: bool) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::MemoStore { prod, pos, matched });
    }

    /// A memo-budget eviction pass freed `columns` columns.
    #[inline]
    pub fn memo_evict(&self, pos: u32, columns: u32) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::MemoEvict { pos, columns });
    }

    /// An ordered-choice alternative failed after consuming input.
    #[inline]
    pub fn backtrack(&self, prod: u32, pos: u32, depth: u32) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::Backtrack { prod, pos, depth });
    }

    /// A governed parse aborted with `reason` (`ParseAbort::name`).
    #[inline]
    pub fn gov_abort(&self, reason: &'static str) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::GovAbort { reason });
    }

    /// End-of-run governor accounting (total ticks and stride refills).
    #[inline]
    pub fn gov_ticks(&self, ticks: u64, refills: u64) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::GovTicks { ticks, refills });
    }

    /// An incremental session reused memo state across an edit.
    #[inline]
    pub fn session_reuse(&self, reused: u64, invalidated: u64, shifted: u64) {
        if !self.enabled {
            return;
        }
        self.point(EventKind::SessionReuse {
            reused,
            invalidated,
            shifted,
        });
    }

    #[cold]
    fn point(&self, kind: EventKind) {
        if self.mask & kind.mask_bit() == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_const_and_inert() {
        const T: Telemetry = Telemetry::disabled();
        assert!(!T.is_enabled());
        let tok = T.enter(0, 0, 0);
        assert_eq!(tok, SpanToken::SKIP);
        T.exit(tok, 0, 0, 0, 5, true);
        T.memo_probe(0, 0);
        T.memo_hit(0, 0, 0, true);
        T.memo_store(0, 0, true);
        T.memo_evict(0, 3);
        T.backtrack(0, 0, 0);
        T.gov_abort("fuel-exhausted");
        T.gov_ticks(10, 1);
        T.session_reuse(1, 2, 3);
        let report = T.take_report();
        assert!(report.events.is_empty());
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn collector_records_in_order_with_timestamps() {
        let t = Telemetry::collector(16);
        let tok = t.enter(1, 0, 0);
        t.memo_store(1, 0, true);
        t.exit(tok, 1, 0, 0, 4, true);
        let report = t.take_report();
        assert_eq!(report.events.len(), 3);
        assert!(matches!(report.events[0].kind, EventKind::Enter { prod: 1, .. }));
        assert!(matches!(
            report.events[2].kind,
            EventKind::Exit { matched: true, end: 4, .. }
        ));
        // Timestamps are monotonically non-decreasing.
        assert!(report.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn cap_counts_dropped_events() {
        let t = Telemetry::collector(2);
        for i in 0..5 {
            t.memo_probe(0, i);
        }
        let report = t.take_report();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.dropped, 3);
    }

    #[test]
    fn sampling_keeps_span_pairs_together() {
        let t = Telemetry::collector(1024).with_sampling(3);
        for i in 0..9 {
            let tok = t.enter(0, i, 0);
            t.exit(tok, 0, i, 0, i + 1, true);
        }
        let report = t.take_report();
        // One in three spans recorded, both ends each time.
        assert_eq!(report.events.len(), 6);
        let enters = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Enter { .. }))
            .count();
        assert_eq!(enters, 3);
        assert_eq!(report.sample, 3);
    }

    #[test]
    fn sampling_never_drops_point_events() {
        let t = Telemetry::collector(1024).with_sampling(1000);
        for i in 0..10 {
            t.memo_probe(0, i);
            t.memo_hit(0, i, 0, true);
        }
        let report = t.take_report();
        assert_eq!(report.events.len(), 20);
    }

    #[test]
    fn mask_filters_event_kinds() {
        let t = Telemetry::collector(1024).with_mask(mask::TRACE);
        let tok = t.enter(0, 0, 0);
        t.memo_probe(0, 0); // filtered
        t.memo_hit(0, 0, 1, false); // kept
        t.memo_store(0, 0, true); // filtered
        t.backtrack(0, 0, 0); // filtered
        t.exit(tok, 0, 0, 0, 0, false);
        let report = t.take_report();
        assert_eq!(report.events.len(), 3);
        // Filtered events are not "dropped" — they were never requested.
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn clones_share_the_collector() {
        let t = Telemetry::collector(16);
        let t2 = t.clone();
        t2.memo_probe(0, 0);
        assert_eq!(t.take_report().events.len(), 1);
    }

    #[test]
    fn take_report_drains_and_is_reusable() {
        let t = Telemetry::collector(2);
        t.set_names(vec!["A".into()]);
        t.set_input_len(7);
        t.memo_probe(0, 0);
        t.memo_probe(0, 1);
        t.memo_probe(0, 2);
        let first = t.take_report();
        assert_eq!(first.events.len(), 2);
        assert_eq!(first.dropped, 1);
        assert_eq!(first.input_len, 7);
        assert_eq!(first.name_of(0), "A");
        assert_eq!(first.name_of(REP_HELPER), "(repetition)");
        assert_eq!(first.name_of(99), "?");
        let second = t.take_report();
        assert!(second.events.is_empty());
        assert_eq!(second.dropped, 0);
        assert_eq!(second.names, vec!["A".to_string()]);
    }
}
