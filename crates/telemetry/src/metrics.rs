//! Aggregation of a raw event stream into per-production metrics.
//!
//! The [`MetricsRegistry`] is the quantitative companion to the
//! chronological exporters: histograms of evaluation time and backtrack
//! depth, memo hit-rates, and run-level totals, with Prometheus-style
//! text and JSON exposition.

use std::fmt;

use crate::json::escape_json;
use crate::{EventKind, TelemetryReport};

/// Number of histogram buckets (shared by time and backtrack-depth
/// histograms so exposition code is uniform).
pub const N_BUCKETS: usize = 16;

/// Upper bounds (inclusive, nanoseconds) of the evaluation-time histogram
/// buckets: ×4 geometric from 256 ns, final bucket open-ended.
pub const TIME_BUCKET_NS: [u64; N_BUCKETS] = {
    let mut b = [0u64; N_BUCKETS];
    let mut i = 0;
    let mut bound = 256u64;
    while i < N_BUCKETS - 1 {
        b[i] = bound;
        bound *= 4;
        i += 1;
    }
    b[N_BUCKETS - 1] = u64::MAX;
    b
};

/// Upper bounds (inclusive) of the backtrack-depth histogram buckets:
/// linear strides of 8 production levels, final bucket open-ended.
pub const BACKTRACK_BUCKET: [u32; N_BUCKETS] = {
    let mut b = [0u32; N_BUCKETS];
    let mut i = 0;
    while i < N_BUCKETS - 1 {
        b[i] = (i as u32 + 1) * 8;
        i += 1;
    }
    b[N_BUCKETS - 1] = u32::MAX;
    b
};

fn time_bucket(ns: u64) -> usize {
    let mut i = 0;
    while i < N_BUCKETS - 1 && ns > TIME_BUCKET_NS[i] {
        i += 1;
    }
    i
}

fn backtrack_bucket(depth: u32) -> usize {
    let mut i = 0;
    while i < N_BUCKETS - 1 && depth > BACKTRACK_BUCKET[i] {
        i += 1;
    }
    i
}

/// Aggregated metrics for one production.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProdMetrics {
    /// Production name.
    pub name: String,
    /// Applications actually evaluated (recorded enter spans).
    pub evals: u64,
    /// Evaluations that matched.
    pub matched: u64,
    /// Evaluations that failed.
    pub failed: u64,
    /// Total (inclusive) nanoseconds across recorded spans.
    pub total_ns: u64,
    /// Exclusive nanoseconds (inclusive minus recorded child spans).
    pub self_ns: u64,
    /// Deepest production-nesting depth observed.
    pub max_depth: u32,
    /// Memo-table lookups.
    pub memo_probes: u64,
    /// Lookups that served a stored answer.
    pub memo_hits: u64,
    /// Memo entries written.
    pub memo_stores: u64,
    /// Alternatives that failed after consuming input.
    pub backtracks: u64,
    /// Histogram of span times; bucket `i` counts spans with duration
    /// ≤ [`TIME_BUCKET_NS`]`[i]` (non-cumulative).
    pub time_hist: [u64; N_BUCKETS],
    /// Histogram of backtrack depths; bucket `i` counts backtracks at
    /// depth ≤ [`BACKTRACK_BUCKET`]`[i]` (non-cumulative).
    pub backtrack_hist: [u64; N_BUCKETS],
}

impl ProdMetrics {
    /// Fraction of memo probes that hit, or 0.0 with no probes.
    pub fn memo_hit_rate(&self) -> f64 {
        if self.memo_probes == 0 {
            0.0
        } else {
            self.memo_hits as f64 / self.memo_probes as f64
        }
    }
}

/// Run-level totals that are not per-production.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Totals {
    /// Events collected.
    pub events: u64,
    /// Events discarded by the buffer cap.
    pub dropped: u64,
    /// Span sampling rate in effect (1 = every span).
    pub sample: u32,
    /// Wall-clock nanoseconds covered by the report.
    pub wall_ns: u64,
    /// Memo-budget eviction passes.
    pub evictions: u64,
    /// Memo columns freed by evictions.
    pub columns_evicted: u64,
    /// Governed aborts, by stable reason name.
    pub aborts: Vec<(&'static str, u64)>,
    /// Governor evaluation steps ticked.
    pub gov_ticks: u64,
    /// Governor stride refills.
    pub gov_refills: u64,
    /// Session memo columns reused across edits.
    pub session_reused: u64,
    /// Session memo columns invalidated by edits.
    pub session_invalidated: u64,
    /// Session memo entries shifted to post-edit coordinates.
    pub session_shifted: u64,
}

/// Per-production metrics aggregated from one [`TelemetryReport`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// One entry per production that produced any event, dense by
    /// production index; the final entry aggregates the anonymous
    /// repetition helpers when they produced events.
    pub prods: Vec<ProdMetrics>,
    /// Run-level totals.
    pub totals: Totals,
}

impl MetricsRegistry {
    /// Aggregates a report's event stream.
    ///
    /// Span pairing walks the stream with an explicit stack; an exit
    /// whose production does not match the open span (possible only when
    /// the cap truncated the stream) is ignored rather than mis-paired.
    pub fn from_report(report: &TelemetryReport) -> Self {
        let mut n = report.names.len();
        let rep_events = report.events.iter().any(|e| {
            matches!(
                e.kind,
                EventKind::Enter { prod, .. }
                | EventKind::Exit { prod, .. }
                | EventKind::MemoProbe { prod, .. }
                | EventKind::MemoHit { prod, .. }
                | EventKind::MemoStore { prod, .. }
                | EventKind::Backtrack { prod, .. }
                if prod == crate::REP_HELPER
            )
        });
        let rep_index = if rep_events {
            n += 1;
            Some(n - 1)
        } else {
            None
        };
        let mut prods: Vec<ProdMetrics> = (0..n)
            .map(|i| ProdMetrics {
                name: if Some(i) == rep_index {
                    "(repetition)".to_string()
                } else {
                    report.name_of(i as u32).to_string()
                },
                ..ProdMetrics::default()
            })
            .collect();
        let index = |prod: u32| -> Option<usize> {
            if prod == crate::REP_HELPER {
                rep_index
            } else if (prod as usize) < report.names.len() {
                Some(prod as usize)
            } else {
                None
            }
        };
        let mut totals = Totals {
            events: report.events.len() as u64,
            dropped: report.dropped,
            sample: report.sample,
            wall_ns: report.wall_ns,
            ..Totals::default()
        };
        // Open spans: (prod, start_ns, child_ns accumulated so far).
        let mut stack: Vec<(u32, u64, u64)> = Vec::new();
        for event in &report.events {
            match event.kind {
                EventKind::Enter { prod, pos: _, depth } => {
                    if let Some(i) = index(prod) {
                        prods[i].evals += 1;
                        prods[i].max_depth = prods[i].max_depth.max(depth);
                    }
                    stack.push((prod, event.at_ns, 0));
                }
                EventKind::Exit { prod, matched, .. } => {
                    if stack.last().map(|s| s.0) != Some(prod) {
                        continue; // truncated stream; never mis-pair
                    }
                    let (_, start, child_ns) = stack.pop().expect("matched above");
                    let dur = event.at_ns.saturating_sub(start);
                    if let Some((_, _, parent_child)) = stack.last_mut() {
                        *parent_child += dur;
                    }
                    if let Some(i) = index(prod) {
                        let p = &mut prods[i];
                        p.total_ns += dur;
                        p.self_ns += dur.saturating_sub(child_ns);
                        p.time_hist[time_bucket(dur)] += 1;
                        if matched {
                            p.matched += 1;
                        } else {
                            p.failed += 1;
                        }
                    }
                }
                EventKind::MemoProbe { prod, .. } => {
                    if let Some(i) = index(prod) {
                        prods[i].memo_probes += 1;
                    }
                }
                EventKind::MemoHit { prod, depth, .. } => {
                    if let Some(i) = index(prod) {
                        prods[i].memo_hits += 1;
                        prods[i].max_depth = prods[i].max_depth.max(depth);
                    }
                }
                EventKind::MemoStore { prod, .. } => {
                    if let Some(i) = index(prod) {
                        prods[i].memo_stores += 1;
                    }
                }
                EventKind::MemoEvict { columns, .. } => {
                    totals.evictions += 1;
                    totals.columns_evicted += u64::from(columns);
                }
                EventKind::Backtrack { prod, depth, .. } => {
                    if let Some(i) = index(prod) {
                        prods[i].backtracks += 1;
                        prods[i].backtrack_hist[backtrack_bucket(depth)] += 1;
                    }
                }
                EventKind::GovAbort { reason } => {
                    match totals.aborts.iter_mut().find(|(r, _)| *r == reason) {
                        Some((_, count)) => *count += 1,
                        None => totals.aborts.push((reason, 1)),
                    }
                }
                EventKind::GovTicks { ticks, refills } => {
                    totals.gov_ticks += ticks;
                    totals.gov_refills += refills;
                }
                EventKind::SessionReuse {
                    reused,
                    invalidated,
                    shifted,
                } => {
                    totals.session_reused += reused;
                    totals.session_invalidated += invalidated;
                    totals.session_shifted += shifted;
                }
            }
        }
        MetricsRegistry { prods, totals }
    }

    /// Prometheus text exposition (counters and cumulative histograms,
    /// one `production` label per grammar production).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
        };
        let label = |name: &str| escape_prom_label(name);

        counter(
            &mut out,
            "modpeg_production_evaluations_total",
            "Production applications evaluated (memo misses and unmemoized)",
        );
        for p in self.active() {
            let _ = writeln!(
                out,
                "modpeg_production_evaluations_total{{production=\"{}\"}} {}",
                label(&p.name),
                p.evals
            );
        }
        counter(
            &mut out,
            "modpeg_production_matched_total",
            "Evaluations that matched",
        );
        for p in self.active() {
            let _ = writeln!(
                out,
                "modpeg_production_matched_total{{production=\"{}\"}} {}",
                label(&p.name),
                p.matched
            );
        }
        counter(
            &mut out,
            "modpeg_production_memo_probes_total",
            "Memo-table lookups",
        );
        for p in self.active() {
            let _ = writeln!(
                out,
                "modpeg_production_memo_probes_total{{production=\"{}\"}} {}",
                label(&p.name),
                p.memo_probes
            );
        }
        counter(
            &mut out,
            "modpeg_production_memo_hits_total",
            "Memo-table lookups that served a stored answer",
        );
        for p in self.active() {
            let _ = writeln!(
                out,
                "modpeg_production_memo_hits_total{{production=\"{}\"}} {}",
                label(&p.name),
                p.memo_hits
            );
        }
        counter(
            &mut out,
            "modpeg_production_backtracks_total",
            "Alternatives that failed after consuming input",
        );
        for p in self.active() {
            let _ = writeln!(
                out,
                "modpeg_production_backtracks_total{{production=\"{}\"}} {}",
                label(&p.name),
                p.backtracks
            );
        }
        let _ = writeln!(
            out,
            "# HELP modpeg_production_time_ns Evaluation time per application, nanoseconds"
        );
        let _ = writeln!(out, "# TYPE modpeg_production_time_ns histogram");
        for p in self.active() {
            let mut cumulative = 0u64;
            for (i, &count) in p.time_hist.iter().enumerate() {
                cumulative += count;
                let le = if TIME_BUCKET_NS[i] == u64::MAX {
                    "+Inf".to_string()
                } else {
                    TIME_BUCKET_NS[i].to_string()
                };
                let _ = writeln!(
                    out,
                    "modpeg_production_time_ns_bucket{{production=\"{}\",le=\"{le}\"}} {cumulative}",
                    label(&p.name)
                );
            }
            let _ = writeln!(
                out,
                "modpeg_production_time_ns_sum{{production=\"{}\"}} {}",
                label(&p.name),
                p.total_ns
            );
            let _ = writeln!(
                out,
                "modpeg_production_time_ns_count{{production=\"{}\"}} {cumulative}",
                label(&p.name)
            );
        }
        let _ = writeln!(
            out,
            "# HELP modpeg_production_backtrack_depth Backtrack nesting depth"
        );
        let _ = writeln!(out, "# TYPE modpeg_production_backtrack_depth histogram");
        for p in self.active().filter(|p| p.backtracks > 0) {
            let mut cumulative = 0u64;
            for (i, &count) in p.backtrack_hist.iter().enumerate() {
                cumulative += count;
                let le = if BACKTRACK_BUCKET[i] == u32::MAX {
                    "+Inf".to_string()
                } else {
                    BACKTRACK_BUCKET[i].to_string()
                };
                let _ = writeln!(
                    out,
                    "modpeg_production_backtrack_depth_bucket{{production=\"{}\",le=\"{le}\"}} {cumulative}",
                    label(&p.name)
                );
            }
            let _ = writeln!(
                out,
                "modpeg_production_backtrack_depth_count{{production=\"{}\"}} {cumulative}",
                label(&p.name)
            );
        }
        counter(&mut out, "modpeg_events_total", "Telemetry events collected");
        let _ = writeln!(out, "modpeg_events_total {}", self.totals.events);
        counter(
            &mut out,
            "modpeg_events_dropped_total",
            "Telemetry events discarded by the buffer cap",
        );
        let _ = writeln!(out, "modpeg_events_dropped_total {}", self.totals.dropped);
        counter(
            &mut out,
            "modpeg_memo_evictions_total",
            "Memo-budget eviction passes",
        );
        let _ = writeln!(out, "modpeg_memo_evictions_total {}", self.totals.evictions);
        counter(
            &mut out,
            "modpeg_governor_ticks_total",
            "Governor evaluation steps ticked",
        );
        let _ = writeln!(out, "modpeg_governor_ticks_total {}", self.totals.gov_ticks);
        counter(&mut out, "modpeg_aborts_total", "Governed parse aborts");
        for (reason, count) in &self.totals.aborts {
            let _ = writeln!(out, "modpeg_aborts_total{{reason=\"{reason}\"}} {count}");
        }
        out
    }

    /// JSON exposition of the same aggregates (an object with a
    /// `productions` array and a `totals` object).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"productions\":[");
        for (i, p) in self.active().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"evals\":{},\"matched\":{},\"failed\":{},\"total_ns\":{},\"self_ns\":{},\"max_depth\":{},\"memo_probes\":{},\"memo_hits\":{},\"memo_hit_rate\":{:.4},\"memo_stores\":{},\"backtracks\":{}}}",
                escape_json(&p.name),
                p.evals,
                p.matched,
                p.failed,
                p.total_ns,
                p.self_ns,
                p.max_depth,
                p.memo_probes,
                p.memo_hits,
                p.memo_hit_rate(),
                p.memo_stores,
                p.backtracks
            );
        }
        let t = &self.totals;
        let _ = write!(
            out,
            "],\"totals\":{{\"events\":{},\"dropped\":{},\"sample\":{},\"wall_ns\":{},\"evictions\":{},\"columns_evicted\":{},\"gov_ticks\":{},\"gov_refills\":{},\"session_reused\":{},\"session_invalidated\":{},\"session_shifted\":{},\"aborts\":[",
            t.events,
            t.dropped,
            t.sample,
            t.wall_ns,
            t.evictions,
            t.columns_evicted,
            t.gov_ticks,
            t.gov_refills,
            t.session_reused,
            t.session_invalidated,
            t.session_shifted
        );
        for (i, (reason, count)) in t.aborts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"reason\":\"{reason}\",\"count\":{count}}}");
        }
        out.push_str("]}}");
        out
    }

    /// Productions with any recorded activity.
    fn active(&self) -> impl Iterator<Item = &ProdMetrics> {
        self.prods.iter().filter(|p| {
            p.evals > 0 || p.memo_probes > 0 || p.memo_stores > 0 || p.backtracks > 0
        })
    }
}

fn escape_prom_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Compact human-readable summary: run totals plus the top productions
/// by inclusive time (what `--telemetry` prints after a parse).
impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = &self.totals;
        writeln!(
            f,
            "telemetry: {} events ({} dropped), sample 1/{}, {:.3} ms wall",
            t.events,
            t.dropped,
            t.sample,
            t.wall_ns as f64 / 1e6
        )?;
        if t.gov_ticks > 0 || !t.aborts.is_empty() {
            write!(
                f,
                "governor: {} ticks, {} refills",
                t.gov_ticks, t.gov_refills
            )?;
            for (reason, count) in &t.aborts {
                write!(f, ", {count} × {reason}")?;
            }
            writeln!(f)?;
        }
        if t.session_reused > 0 || t.session_invalidated > 0 {
            writeln!(
                f,
                "session: {} columns reused, {} invalidated, {} entries shifted",
                t.session_reused, t.session_invalidated, t.session_shifted
            )?;
        }
        let mut ranked: Vec<&ProdMetrics> = self.active().collect();
        ranked.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(b.evals.cmp(&a.evals)));
        if ranked.is_empty() {
            return Ok(());
        }
        writeln!(
            f,
            "{:<24} {:>8} {:>10} {:>10} {:>9} {:>10}",
            "production", "evals", "total ms", "self ms", "memo hit%", "backtracks"
        )?;
        for p in ranked.iter().take(12) {
            writeln!(
                f,
                "{:<24} {:>8} {:>10.3} {:>10.3} {:>8.1}% {:>10}",
                p.name,
                p.evals,
                p.total_ns as f64 / 1e6,
                p.self_ns as f64 / 1e6,
                p.memo_hit_rate() * 100.0,
                p.backtracks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample_report() -> TelemetryReport {
        let t = Telemetry::collector(1024);
        t.set_names(vec!["Root".into(), "Leaf".into()]);
        t.set_input_len(10);
        let root = t.enter(0, 0, 0);
        let leaf = t.enter(1, 0, 1);
        t.memo_probe(1, 0);
        t.memo_store(1, 0, true);
        t.exit(leaf, 1, 0, 1, 4, true);
        t.memo_probe(1, 4);
        t.memo_hit(1, 4, 1, false);
        t.backtrack(0, 4, 0);
        t.exit(root, 0, 0, 0, 4, true);
        t.gov_ticks(100, 2);
        t.session_reuse(5, 1, 9);
        t.take_report()
    }

    #[test]
    fn aggregates_counts_and_pairing() {
        let r = MetricsRegistry::from_report(&sample_report());
        assert_eq!(r.prods.len(), 2);
        let root = &r.prods[0];
        let leaf = &r.prods[1];
        assert_eq!(root.evals, 1);
        assert_eq!(root.matched, 1);
        assert_eq!(root.backtracks, 1);
        assert_eq!(leaf.evals, 1);
        assert_eq!(leaf.memo_probes, 2);
        assert_eq!(leaf.memo_hits, 1);
        assert_eq!(leaf.memo_stores, 1);
        assert!((leaf.memo_hit_rate() - 0.5).abs() < 1e-9);
        // Child time is subtracted from the parent's self time.
        assert!(root.total_ns >= leaf.total_ns);
        assert_eq!(root.self_ns, root.total_ns - leaf.total_ns);
        assert_eq!(r.totals.gov_ticks, 100);
        assert_eq!(r.totals.session_reused, 5);
        assert_eq!(r.totals.session_shifted, 9);
    }

    #[test]
    fn tolerates_truncated_streams() {
        let t = Telemetry::collector(1); // only the first event fits
        let tok = t.enter(0, 0, 0);
        t.exit(tok, 0, 0, 0, 3, true); // dropped by the cap
        let report = t.take_report();
        assert_eq!(report.dropped, 1);
        let r = MetricsRegistry::from_report(&report);
        // The unclosed span contributes an eval but no duration.
        assert_eq!(r.prods.len(), 0); // no names were set
        assert_eq!(r.totals.dropped, 1);
    }

    #[test]
    fn repetition_helper_gets_its_own_row() {
        let t = Telemetry::collector(64);
        t.set_names(vec!["Root".into()]);
        t.memo_probe(crate::REP_HELPER, 0);
        t.memo_store(crate::REP_HELPER, 0, true);
        let r = MetricsRegistry::from_report(&t.take_report());
        assert_eq!(r.prods.len(), 2);
        assert_eq!(r.prods[1].name, "(repetition)");
        assert_eq!(r.prods[1].memo_probes, 1);
    }

    #[test]
    fn prometheus_exposition_is_well_shaped() {
        let text = MetricsRegistry::from_report(&sample_report()).to_prometheus();
        assert!(text.contains("# TYPE modpeg_production_evaluations_total counter"));
        assert!(text.contains("modpeg_production_evaluations_total{production=\"Root\"} 1"));
        assert!(text.contains("modpeg_production_time_ns_bucket{production=\"Root\",le=\"+Inf\"}"));
        assert!(text.contains("modpeg_governor_ticks_total 100"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
        }
    }

    #[test]
    fn json_exposition_is_valid_json() {
        let json = MetricsRegistry::from_report(&sample_report()).to_json();
        crate::validate_json(&json).expect("metrics JSON must validate");
        assert!(json.contains("\"name\":\"Leaf\""));
        assert!(json.contains("\"gov_ticks\":100"));
    }

    #[test]
    fn display_summary_mentions_top_production() {
        let r = MetricsRegistry::from_report(&sample_report());
        let s = r.to_string();
        assert!(s.contains("telemetry:"), "{s}");
        assert!(s.contains("Root"), "{s}");
        assert!(s.contains("governor: 100 ticks"), "{s}");
        assert!(s.contains("session: 5 columns reused"), "{s}");
    }

    #[test]
    fn histogram_bucket_bounds_are_monotonic() {
        for w in TIME_BUCKET_NS.windows(2) {
            assert!(w[0] < w[1]);
        }
        for w in BACKTRACK_BUCKET.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(time_bucket(0), 0);
        assert_eq!(time_bucket(u64::MAX), N_BUCKETS - 1);
        assert_eq!(backtrack_bucket(u32::MAX), N_BUCKETS - 1);
    }
}
