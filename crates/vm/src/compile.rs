//! The assembler: lowers the interpreter's compiled IR into a flat
//! bytecode chunk.
//!
//! The VM deliberately compiles *from* [`CompiledGrammar`] rather than
//! from the raw grammar: that way every grammar transform, memoization
//! decision, first-set table, and failure description is decided by
//! exactly one component, and the three engines (tree-walking
//! interpreter, generated parsers, bytecode VM) can never drift on
//! *strategy* — only on execution. The assembler is a straight
//! syntax-directed translation of that IR with a handful of peephole
//! superinstruction selections.

use modpeg_core::ProdKind;
use modpeg_interp::ir::{CAlt, CExpr, CProd, EId};
use modpeg_interp::{CompiledGrammar, OptConfig};

use crate::ops::{ClassConst, FirstConst, KindConst, LitConst, Op, ProdInfo};
use crate::VmError;

/// The assembled program, before being wrapped in [`crate::VmProgram`].
pub(crate) struct Chunk {
    pub(crate) ops: Vec<Op>,
    pub(crate) lits: Vec<LitConst>,
    pub(crate) classes: Vec<ClassConst>,
    pub(crate) kinds: Vec<KindConst>,
    pub(crate) firsts: Vec<FirstConst>,
    pub(crate) prods: Vec<ProdInfo>,
}

struct Assembler<'g> {
    cfg: OptConfig,
    prods: &'g [CProd],
    exprs: &'g [CExpr],
    yields: &'g [bool],
    ops: Vec<Op>,
    lits: Vec<LitConst>,
    classes: Vec<ClassConst>,
    kinds: Vec<KindConst>,
    firsts: Vec<FirstConst>,
    /// `(op index, production index)` call sites to patch once every
    /// production's entry pc is known.
    call_fixups: Vec<(usize, u32)>,
}

pub(crate) fn assemble(g: &CompiledGrammar) -> Result<Chunk, VmError> {
    let cfg = g.config();
    // The bytecode models repetition as loops and left recursion as seed
    // folding; the unoptimized strategies (memoized repetition helpers,
    // Warth-style seed growing) exist to make the interpreter's ablation
    // ladder faithful to the paper and are not worth a second encoding.
    if !cfg.iterative_repetition {
        return Err(VmError::Unsupported(
            "the VM requires the `iterative-repetition` optimization \
             (memoized repetition helpers are interpreter-only)",
        ));
    }
    if !cfg.left_recursion_iter {
        return Err(VmError::Unsupported(
            "the VM requires the `left-recursion` optimization \
             (Warth-style seed growing is interpreter-only)",
        ));
    }

    let mut asm = Assembler {
        cfg,
        prods: g.ir_prods(),
        exprs: g.ir_exprs(),
        yields: g.ir_yields(),
        ops: Vec::new(),
        lits: Vec::new(),
        classes: Vec::new(),
        kinds: Vec::new(),
        firsts: Vec::new(),
        call_fixups: Vec::new(),
    };

    // Bootstrap: apply the root production (always wanting its value —
    // even a void root yields `Unit` as the tree), then halt.
    asm.emit_call_raw(g.ir_root().index() as u32, true);
    asm.op(Op::Halt);

    let mut infos = Vec::with_capacity(asm.prods.len());
    for pi in 0..asm.prods.len() {
        let entry = asm.here();
        asm.emit_prod(pi);
        infos.push(ProdInfo {
            name: asm.prods[pi].name.clone(),
            entry,
        });
    }

    for (at, prod) in std::mem::take(&mut asm.call_fixups) {
        asm.ops[at].set_target(infos[prod as usize].entry);
    }

    Ok(Chunk {
        ops: asm.ops,
        lits: asm.lits,
        classes: asm.classes,
        kinds: asm.kinds,
        firsts: asm.firsts,
        prods: infos,
    })
}

impl<'g> Assembler<'g> {
    fn op(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.ops[at].set_target(target);
    }

    // ----- constant pools (deduplicated by content) -----

    fn lit(&mut self, text: &std::rc::Rc<str>, desc: &std::rc::Rc<str>) -> u32 {
        if let Some(i) = self.lits.iter().position(|l| *l.text == **text) {
            return i as u32;
        }
        self.lits.push(LitConst {
            text: text.clone(),
            desc: desc.clone(),
        });
        self.lits.len() as u32 - 1
    }

    fn class(&mut self, class: &modpeg_core::CharClass, desc: &std::rc::Rc<str>) -> u32 {
        if let Some(i) = self
            .classes
            .iter()
            .position(|c| c.class == *class && *c.desc == **desc)
        {
            return i as u32;
        }
        self.classes.push(ClassConst {
            class: class.clone(),
            desc: desc.clone(),
        });
        self.classes.len() as u32 - 1
    }

    fn kind(&mut self, kind: &modpeg_runtime::NodeKind) -> u32 {
        if let Some(i) = self.kinds.iter().position(|k| k.as_str() == kind.as_str()) {
            return i as u32;
        }
        self.kinds.push(kind.clone());
        self.kinds.len() as u32 - 1
    }

    fn first(&mut self, set: &modpeg_core::analysis::FirstSet, desc: &std::rc::Rc<str>) -> u32 {
        self.firsts.push(FirstConst {
            set: *set,
            desc: desc.clone(),
        });
        self.firsts.len() as u32 - 1
    }

    // ----- productions -----

    /// Layout of an ordinary production:
    ///
    /// ```text
    /// entry:  Catch L_fail
    ///         [per alternative: DispatchSkip? / Choice / body /
    ///          finisher / Commit L_ret / AltBacktrack next]
    ///         Fail                  ; alternatives exhausted
    /// L_ret:  Ret
    /// L_fail: RetFail
    /// ```
    ///
    /// Left-recursive productions replace `Commit L_ret` on the bases
    /// with a commit into the grow loop, which folds tails onto the
    /// seed until none matches.
    fn emit_prod(&mut self, pi: usize) {
        let p = &self.prods[pi];
        let catch_at = self.op(Op::Catch(0));
        let want = inner_want(p.kind, p.text_takes_inner, self.cfg);

        if let Some(lr) = &p.lr {
            // Bases commit into the grow loop instead of returning.
            let commits = self.emit_alts(&lr.bases, p, want, true);
            self.op(Op::Fail);
            let l_seed = self.here();
            for at in commits {
                self.patch(at, l_seed);
            }
            self.op(Op::PushAcc);
            let l_grow = self.here();
            self.op(Op::GuardTick);
            let mut next_fixups: Vec<usize> = Vec::new();
            for tail in &lr.tails {
                for at in next_fixups.drain(..) {
                    self.patch(at, self.ops.len() as u32);
                }
                if let Some((set, desc)) = &tail.first {
                    let fi = self.first(set, desc);
                    let at = self.op(Op::DispatchSkip { first: fi, target: 0 });
                    next_fixups.push(at);
                }
                let choice_at = self.op(Op::Choice(0));
                self.emit_expr(tail.expr, true);
                let ki = self.kind(&tail.node_kind);
                self.op(Op::FoldNode {
                    kind: ki,
                    with_span: p.with_span,
                });
                self.op(Op::Commit(l_grow));
                let bt = self.here();
                self.patch(choice_at, bt);
                let at = self.op(Op::ChoiceBacktrack(0));
                next_fixups.push(at);
            }
            let l_done = self.here();
            for at in next_fixups {
                self.patch(at, l_done);
            }
            self.op(Op::PopAcc);
            self.op(Op::Ret);
            let l_fail = self.here();
            self.patch(catch_at, l_fail);
            self.op(Op::RetFail);
        } else {
            let commits = self.emit_alts(&p.alts, p, want, false);
            self.op(Op::Fail);
            let l_ret = self.here();
            for at in commits {
                self.patch(at, l_ret);
            }
            self.op(Op::Ret);
            let l_fail = self.here();
            self.patch(catch_at, l_fail);
            self.op(Op::RetFail);
        }
    }

    /// Emits the alternative ladder; returns the `Commit` sites to patch
    /// to the accept label. `lr_bases` only affects nothing here — the
    /// caller chooses the accept label — but is kept for symmetry with
    /// the interpreter's `eval_alts`.
    fn emit_alts(&mut self, alts: &[CAlt], p: &CProd, want: bool, _lr_bases: bool) -> Vec<usize> {
        let mut commits = Vec::with_capacity(alts.len());
        let mut next_fixups: Vec<usize> = Vec::new();
        for alt in alts {
            for at in next_fixups.drain(..) {
                self.patch(at, self.ops.len() as u32);
            }
            if let Some((set, desc)) = &alt.first {
                let fi = self.first(set, desc);
                let at = self.op(Op::DispatchSkip { first: fi, target: 0 });
                next_fixups.push(at);
            }
            let choice_at = self.op(Op::Choice(0));
            self.emit_expr(alt.expr, want);
            self.emit_finisher(p, alt);
            commits.push(self.op(Op::Commit(0)));
            let bt = self.here();
            self.patch(choice_at, bt);
            let at = self.op(Op::AltBacktrack(0));
            next_fixups.push(at);
        }
        let exhausted = self.here();
        for at in next_fixups {
            self.patch(at, exhausted);
        }
        commits
    }

    fn emit_finisher(&mut self, p: &CProd, alt: &CAlt) {
        match p.kind {
            ProdKind::Void => {
                self.op(Op::UnitFinish);
            }
            ProdKind::Text => {
                self.op(Op::MakeTextFinish {
                    take_inner: p.text_takes_inner,
                });
            }
            ProdKind::Node => {
                let ki = self.kind(&alt.node_kind);
                self.op(Op::MakeNodeFinish {
                    kind: ki,
                    passthrough: alt.passthrough,
                    with_span: p.with_span,
                });
            }
        }
    }

    // ----- expressions -----

    fn emit_expr(&mut self, eid: EId, want: bool) {
        let exprs = self.exprs;
        match &exprs[eid as usize] {
            CExpr::Empty => {}
            CExpr::Any => {
                self.op(Op::Any);
            }
            CExpr::Lit { text, desc } => {
                let li = self.lit(text, desc);
                self.op(if self.cfg.string_match {
                    Op::Lit(li)
                } else {
                    Op::LitBytes(li)
                });
            }
            CExpr::Class { class, desc } => {
                let ci = self.class(class, desc);
                self.op(Op::Class(ci));
            }
            CExpr::Ref(pid) => {
                let callee = &self.prods[pid.index()];
                let push = want && callee.kind != ProdKind::Void;
                self.emit_call_raw(pid.index() as u32, push);
            }
            CExpr::Seq(items) => {
                for x in items.clone() {
                    self.emit_expr(x, want);
                }
            }
            CExpr::Choice { arms, first } => {
                let arms = arms.clone();
                let firsts = first.clone();
                let mut commits = Vec::with_capacity(arms.len());
                let mut next_fixups: Vec<usize> = Vec::new();
                for (i, arm) in arms.iter().enumerate() {
                    for at in next_fixups.drain(..) {
                        self.patch(at, self.ops.len() as u32);
                    }
                    if let Some(table) = &firsts {
                        let (set, desc) = &table[i];
                        let fi = self.first(set, desc);
                        let at = self.op(Op::DispatchSkip { first: fi, target: 0 });
                        next_fixups.push(at);
                    }
                    let choice_at = self.op(Op::Choice(0));
                    self.emit_expr(*arm, want);
                    commits.push(self.op(Op::Commit(0)));
                    let bt = self.here();
                    self.patch(choice_at, bt);
                    let at = self.op(Op::ChoiceBacktrack(0));
                    next_fixups.push(at);
                }
                let exhausted = self.here();
                for at in next_fixups {
                    self.patch(at, exhausted);
                }
                self.op(Op::Fail);
                let l_cont = self.here();
                for at in commits {
                    self.patch(at, l_cont);
                }
            }
            CExpr::Opt { inner, .. } => {
                let inner = *inner;
                let w = want && self.yields[inner as usize];
                self.op(Op::MarkHere);
                let choice_at = self.op(Op::Choice(0));
                self.emit_expr(inner, w);
                self.op(Op::NormalizeOpt);
                let jump_at = self.op(Op::Jump(0));
                let l_absent = self.here();
                self.patch(choice_at, l_absent);
                self.op(Op::AbsentOpt { push_absent: w });
                let l_cont = self.here();
                self.patch(jump_at, l_cont);
            }
            CExpr::Star { inner, .. } => {
                let inner = *inner;
                if let Some(ci) = self.bare_class(inner) {
                    self.op(Op::ClassStar(ci));
                    return;
                }
                let w = want && self.yields[inner as usize];
                self.op(Op::MarkHere);
                let l_loop = self.here();
                self.op(Op::GuardTick);
                let choice_at = self.op(Op::Choice(0));
                self.emit_expr(inner, w);
                self.op(Op::LoopCommitNZ(l_loop));
                let l_exit = self.here();
                self.patch(choice_at, l_exit);
                self.op(Op::StarFinish { make: w });
            }
            CExpr::Plus { inner, .. } => {
                let inner = *inner;
                if let Some(ci) = self.bare_class(inner) {
                    self.op(Op::ClassPlus(ci));
                    return;
                }
                let w = want && self.yields[inner as usize];
                self.op(Op::MarkHere);
                self.emit_expr(inner, w);
                self.op(Op::MarkHere);
                let l_loop = self.here();
                self.op(Op::GuardTick);
                let choice_at = self.op(Op::Choice(0));
                self.emit_expr(inner, w);
                self.op(Op::LoopCommitNZ(l_loop));
                let l_exit = self.here();
                self.patch(choice_at, l_exit);
                self.op(Op::PlusFinish { collect: w });
            }
            CExpr::And(inner) => {
                let inner = *inner;
                if let Some(ci) = self.bare_class(inner) {
                    self.op(Op::AndClass(ci));
                    return;
                }
                let choice_at = self.op(Op::Choice(0));
                self.op(Op::IncSuppress);
                self.emit_expr(inner, false);
                let back_at = self.op(Op::BackCommit(0));
                let l_fail = self.here();
                self.patch(choice_at, l_fail);
                self.op(Op::Fail);
                let l_cont = self.here();
                self.patch(back_at, l_cont);
            }
            CExpr::Not(inner) => {
                let inner = *inner;
                match &exprs[inner as usize] {
                    CExpr::Class { class, desc } => {
                        let ci = self.class(class, desc);
                        self.op(Op::NotClass(ci));
                        return;
                    }
                    CExpr::Lit { text, desc } if self.cfg.string_match => {
                        let li = self.lit(text, desc);
                        self.op(Op::NotLit(li));
                        return;
                    }
                    CExpr::Any => {
                        self.op(Op::NotAny);
                        return;
                    }
                    _ => {}
                }
                let choice_at = self.op(Op::Choice(0));
                self.op(Op::IncSuppress);
                self.emit_expr(inner, false);
                self.op(Op::FailTwice);
                let l_ok = self.here();
                self.patch(choice_at, l_ok);
            }
            CExpr::Capture(inner) => {
                let inner = *inner;
                let iw = !self.cfg.value_elision;
                self.op(Op::MarkHere);
                self.emit_expr(inner, iw);
                self.op(Op::CaptureFinish { push: want });
            }
            CExpr::Void(inner) => {
                let inner = *inner;
                let iw = !self.cfg.value_elision;
                if iw {
                    self.op(Op::MarkHere);
                    self.emit_expr(inner, true);
                    self.op(Op::DropMark);
                } else {
                    self.emit_expr(inner, false);
                }
            }
            CExpr::SDefine(inner) => {
                let inner = *inner;
                self.op(Op::MarkHere);
                self.emit_expr(inner, true);
                self.op(Op::StateDefine { keep: want });
            }
            CExpr::SIsDef(inner) => {
                let inner = *inner;
                self.op(Op::MarkHere);
                self.emit_expr(inner, true);
                self.op(Op::StateIsDef { keep: want });
            }
            CExpr::SIsNotDef(inner) => {
                let inner = *inner;
                self.op(Op::MarkHere);
                self.emit_expr(inner, true);
                self.op(Op::StateIsNotDef { keep: want });
            }
            CExpr::SScope(inner) => {
                let inner = *inner;
                let choice_at = self.op(Op::Choice(0));
                self.op(Op::ScopePush);
                self.emit_expr(inner, want);
                self.op(Op::ScopePopCommit);
                let jump_at = self.op(Op::Jump(0));
                let l_fail = self.here();
                self.patch(choice_at, l_fail);
                self.op(Op::Fail);
                let l_cont = self.here();
                self.patch(jump_at, l_cont);
            }
        }
    }

    /// The character-class pool index when `eid` is a bare class (the
    /// eligibility test for the class superinstructions).
    fn bare_class(&mut self, eid: EId) -> Option<u32> {
        match &self.exprs[eid as usize] {
            CExpr::Class { class, desc } => {
                let class = class.clone();
                let desc = desc.clone();
                Some(self.class(&class, &desc))
            }
            _ => None,
        }
    }

    fn emit_call_raw(&mut self, prod: u32, push: bool) {
        let callee = &self.prods[prod as usize];
        let at = match callee.memo_slot {
            Some(slot) => self.op(Op::MemoCall {
                prod,
                target: 0,
                slot,
                push,
                epoch_check: callee.epoch_check,
            }),
            None => self.op(Op::Call {
                prod,
                target: 0,
                push,
            }),
        };
        self.call_fixups.push((at, prod));
    }
}

/// What value context a production's alternatives evaluate under —
/// byte-for-byte the interpreter's `inner_want`.
fn inner_want(kind: ProdKind, text_takes_inner: bool, cfg: OptConfig) -> bool {
    match kind {
        ProdKind::Node => true,
        ProdKind::Text => text_takes_inner || !cfg.value_elision,
        ProdKind::Void => !cfg.value_elision,
    }
}
