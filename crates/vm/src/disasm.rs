//! Deterministic textual disassembly of an assembled program.
//!
//! The format is stable for a given grammar and configuration (no
//! addresses beyond instruction indices, no hashing, no iteration over
//! unordered containers), so the conformance suite pins it as a golden
//! file: any instruction-encoding change becomes a reviewable diff.

use std::fmt::Write as _;

use crate::ops::Op;
use crate::VmProgram;

pub(crate) fn disassemble(p: &VmProgram) -> String {
    let chunk = p.chunk();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; modpeg-vm bytecode · {} productions · {} instructions · {} memo slots",
        chunk.prods.len(),
        chunk.ops.len(),
        p.memo_slot_count(),
    );
    let _ = writeln!(
        out,
        "; pools: {} literals · {} classes · {} kinds · {} first sets",
        chunk.lits.len(),
        chunk.classes.len(),
        chunk.kinds.len(),
        chunk.firsts.len(),
    );
    out.push('\n');

    for (i, l) in chunk.lits.iter().enumerate() {
        let _ = writeln!(out, "lit[{i}]   = {}", l.desc);
    }
    for (i, c) in chunk.classes.iter().enumerate() {
        let _ = writeln!(out, "class[{i}] = {}", c.desc);
    }
    for (i, k) in chunk.kinds.iter().enumerate() {
        let _ = writeln!(out, "kind[{i}]  = {}", k.as_str());
    }
    for (i, f) in chunk.firsts.iter().enumerate() {
        let _ = writeln!(out, "first[{i}] = {}", f.desc);
    }

    // Map each production entry pc to its name for section headers.
    let mut entries: Vec<(u32, &str)> = chunk
        .prods
        .iter()
        .map(|pi| (pi.entry, pi.name.as_str()))
        .collect();
    entries.sort_unstable();
    let mut next_entry = 0usize;

    out.push('\n');
    let _ = writeln!(out, "; -- bootstrap --");
    for (pc, op) in chunk.ops.iter().enumerate() {
        let pc = pc as u32;
        while next_entry < entries.len() && entries[next_entry].0 == pc {
            out.push('\n');
            let _ = writeln!(out, "; -- {} (entry {pc:04}) --", entries[next_entry].1);
            next_entry += 1;
        }
        let _ = writeln!(out, "{pc:04}  {}", render(p, *op));
    }
    out
}

fn prod_name(p: &VmProgram, prod: u32) -> &str {
    &p.chunk().prods[prod as usize].name
}

fn render(p: &VmProgram, op: Op) -> String {
    match op {
        Op::Jump(t) => format!("jump -> {t:04}"),
        Op::Choice(t) => format!("choice -> {t:04}"),
        Op::Commit(t) => format!("commit -> {t:04}"),
        Op::BackCommit(t) => format!("backcommit -> {t:04}"),
        Op::FailTwice => "failtwice".into(),
        Op::Fail => "fail".into(),
        Op::Catch(t) => format!("catch -> {t:04}"),
        Op::LoopCommitNZ(t) => format!("loopcommitnz -> {t:04}"),
        Op::GuardTick => "guardtick".into(),
        Op::Halt => "halt".into(),
        Op::Call { prod, target, push } => format!(
            "call {}{} -> {target:04}",
            prod_name(p, prod),
            if push { " push" } else { "" },
        ),
        Op::MemoCall {
            prod,
            target,
            slot,
            push,
            epoch_check,
        } => format!(
            "memocall {} slot={slot}{}{} -> {target:04}",
            prod_name(p, prod),
            if push { " push" } else { "" },
            if epoch_check { " epoch" } else { "" },
        ),
        Op::Ret => "ret".into(),
        Op::RetFail => "retfail".into(),
        Op::Any => "any".into(),
        Op::Lit(i) => format!("lit {i} ; {}", p.lit(i).desc),
        Op::LitBytes(i) => format!("litbytes {i} ; {}", p.lit(i).desc),
        Op::Class(i) => format!("class {i} ; {}", p.class(i).desc),
        Op::ClassStar(i) => format!("classstar {i} ; {}", p.class(i).desc),
        Op::ClassPlus(i) => format!("classplus {i} ; {}", p.class(i).desc),
        Op::NotClass(i) => format!("notclass {i} ; {}", p.class(i).desc),
        Op::NotLit(i) => format!("notlit {i} ; {}", p.lit(i).desc),
        Op::NotAny => "notany".into(),
        Op::AndClass(i) => format!("andclass {i} ; {}", p.class(i).desc),
        Op::DispatchSkip { first, target } => format!("dispatchskip first[{first}] -> {target:04}"),
        Op::AltBacktrack(t) => format!("altbacktrack -> {t:04}"),
        Op::ChoiceBacktrack(t) => format!("choicebacktrack -> {t:04}"),
        Op::MarkHere => "markhere".into(),
        Op::NormalizeOpt => "normalizeopt".into(),
        Op::AbsentOpt { push_absent } => {
            format!("absentopt{}", if push_absent { " push" } else { "" })
        }
        Op::StarFinish { make } => format!("starfinish{}", if make { " make" } else { "" }),
        Op::PlusFinish { collect } => {
            format!("plusfinish{}", if collect { " collect" } else { "" })
        }
        Op::CaptureFinish { push } => format!("capturefinish{}", if push { " push" } else { "" }),
        Op::DropMark => "dropmark".into(),
        Op::PushAcc => "pushacc".into(),
        Op::PopAcc => "popacc".into(),
        Op::FoldNode { kind, with_span } => format!(
            "foldnode {} ; {}{}",
            kind,
            p.kind(kind).as_str(),
            if with_span { " +span" } else { "" },
        ),
        Op::MakeNodeFinish {
            kind,
            passthrough,
            with_span,
        } => format!(
            "makenode {} ; {}{}{}",
            kind,
            p.kind(kind).as_str(),
            if passthrough { " passthrough" } else { "" },
            if with_span { " +span" } else { "" },
        ),
        Op::MakeTextFinish { take_inner } => {
            format!("maketext{}", if take_inner { " inner" } else { "" })
        }
        Op::UnitFinish => "unit".into(),
        Op::IncSuppress => "incsuppress".into(),
        Op::StateDefine { keep } => format!("statedefine{}", if keep { " keep" } else { "" }),
        Op::StateIsDef { keep } => format!("stateisdef{}", if keep { " keep" } else { "" }),
        Op::StateIsNotDef { keep } => format!("stateisnotdef{}", if keep { " keep" } else { "" }),
        Op::ScopePush => "scopepush".into(),
        Op::ScopePopCommit => "scopepopcommit".into(),
    }
}
