//! # modpeg-vm
//!
//! The bytecode parsing machine: modpeg's third execution engine,
//! between the tree-walking interpreter (`modpeg-interp`) and generated
//! Rust parsers (`modpeg-codegen`).
//!
//! Following Nez's parsing machine and LPeg's instruction idiom, a
//! grammar is compiled — *through* the interpreter's elaborated IR, so
//! every optimization decision is shared — into a flat instruction
//! stream plus constant pools (literals, character-class bitsets, node
//! kinds, terminal-dispatch first sets). A register-light dispatch loop
//! then executes it with explicit backtrack/call/value stacks,
//! memoized-call instructions over the chunked packrat table, and
//! superinstructions for the hottest PEG shapes (`[c]*`, `[c]+`, `![c]`,
//! `!"lit"`, `!.`, `&[c]`, whole-literal matching, memoized nonterminal
//! application).
//!
//! The machine is observationally identical to the other engines —
//! same trees, same accept/reject verdicts, same farthest-failure
//! offsets, same per-production memo traffic — and supports the same
//! governed-parsing entry points (deadlines, fuel, depth and memo-byte
//! budgets, cancellation) with the same deterministic abort semantics.
//!
//! ## Example
//!
//! ```
//! use modpeg_core::{CharClass, Expr, GrammarBuilder, ProdKind};
//! use modpeg_vm::VmProgram;
//!
//! let mut b = GrammarBuilder::new("m");
//! b.production("Word", ProdKind::Text, vec![(None, Expr::Capture(Box::new(
//!     Expr::Plus(Box::new(Expr::Class(CharClass::from_ranges(
//!         vec![('a', 'z')], false)))))))]);
//! let grammar = b.build("Word")?;
//! let program = VmProgram::full(&grammar)?;
//! let tree = program.parse("hello").expect("matches");
//! assert_eq!(tree.to_sexpr(), "\"hello\"");
//! assert!(program.parse("hello!").is_err());
//! # Ok::<(), modpeg_vm::VmError>(())
//! ```

#![warn(missing_docs)]

mod compile;
mod disasm;
mod machine;
mod ops;

use modpeg_core::{Diagnostics, Grammar};
use modpeg_interp::{CompiledGrammar, OptConfig};
use modpeg_runtime::{
    Failures, Governor, Input, NodeKind, ParseError, ParseFault, Stats, SyntaxTree,
};
use modpeg_telemetry::Telemetry;

use crate::machine::Machine;
use crate::ops::{ClassConst, FirstConst, LitConst, Op};

/// Why a grammar could not be compiled to bytecode.
#[derive(Debug)]
pub enum VmError {
    /// The grammar itself failed to compile (same diagnostics the
    /// interpreter would report).
    Grammar(Diagnostics),
    /// The optimization configuration selects an execution strategy the
    /// bytecode does not encode.
    Unsupported(&'static str),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Grammar(d) => write!(f, "{d}"),
            VmError::Unsupported(why) => write!(f, "unsupported configuration: {why}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<Diagnostics> for VmError {
    fn from(d: Diagnostics) -> Self {
        VmError::Grammar(d)
    }
}

/// A grammar compiled to bytecode: the instruction stream, its constant
/// pools, and the optimization configuration it was compiled under.
pub struct VmProgram {
    chunk: compile::Chunk,
    cfg: OptConfig,
    n_slots: u32,
    arena_enabled: bool,
}

impl VmProgram {
    /// Compiles `grammar` under `cfg`.
    ///
    /// The bytecode encodes the *optimized* repetition and left-recursion
    /// strategies only: `cfg` must enable `iterative-repetition` and
    /// `left-recursion` (both [`OptConfig::all`] and
    /// [`OptConfig::incremental`] do). Every other flag is honored
    /// faithfully — memoization and transient sets, terminal dispatch,
    /// string matching, value elision, chunked memoization, error
    /// recording, location elision.
    ///
    /// # Errors
    ///
    /// [`VmError::Grammar`] when the grammar itself does not compile,
    /// [`VmError::Unsupported`] for configurations whose execution
    /// strategy is interpreter-only (see above).
    pub fn compile(grammar: &Grammar, cfg: OptConfig) -> Result<VmProgram, VmError> {
        let cg = CompiledGrammar::compile(grammar, cfg)?;
        VmProgram::from_compiled(&cg)
    }

    /// Compiles `grammar` fully optimized ([`OptConfig::all`]).
    ///
    /// # Errors
    ///
    /// [`VmError::Grammar`] when the grammar does not compile.
    pub fn full(grammar: &Grammar) -> Result<VmProgram, VmError> {
        VmProgram::compile(grammar, OptConfig::all())
    }

    /// Assembles bytecode from an already-compiled grammar, sharing its
    /// elaborated IR (and therefore every optimization decision).
    ///
    /// # Errors
    ///
    /// [`VmError::Unsupported`] for interpreter-only configurations (see
    /// [`VmProgram::compile`]).
    pub fn from_compiled(cg: &CompiledGrammar) -> Result<VmProgram, VmError> {
        let chunk = compile::assemble(cg)?;
        Ok(VmProgram {
            chunk,
            cfg: cg.config(),
            n_slots: cg.memo_slot_count(),
            arena_enabled: cg.arena_enabled(),
        })
    }

    /// The optimization configuration the program was compiled under.
    pub fn config(&self) -> OptConfig {
        self.cfg
    }

    /// Whether runs build semantic values in the per-parse arena
    /// (default) or as individually heap-allocated trees.
    pub fn arena_enabled(&self) -> bool {
        self.arena_enabled
    }

    /// Switches between arena-backed (default) and legacy heap-allocated
    /// semantic values. Both produce structurally identical trees; the
    /// toggle exists for the equivalence tests and the heap experiments.
    pub fn set_arena_enabled(&mut self, enabled: bool) {
        self.arena_enabled = enabled;
    }

    /// Number of instructions in the program (bootstrap included).
    pub fn op_count(&self) -> usize {
        self.chunk.ops.len()
    }

    /// Number of productions.
    pub fn production_count(&self) -> usize {
        self.chunk.prods.len()
    }

    /// Number of memo slots (columns) the machine's packrat table has.
    pub fn memo_slot_count(&self) -> u32 {
        self.n_slots
    }

    /// A deterministic textual disassembly of the whole program:
    /// constant pools first, then each production's instruction range.
    /// Stable across runs for a given grammar and configuration, so
    /// instruction-encoding changes show up as reviewable diffs.
    pub fn disassemble(&self) -> String {
        disasm::disassemble(self)
    }

    // ----- parsing -----

    /// Parses `text`, requiring the root production to consume all of it.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the farthest failure when the
    /// input does not match (or does not match completely).
    pub fn parse(&self, text: &str) -> Result<SyntaxTree, ParseError> {
        self.parse_with_stats(text).0
    }

    /// Like [`VmProgram::parse`], also returning the run's [`Stats`].
    pub fn parse_with_stats(&self, text: &str) -> (Result<SyntaxTree, ParseError>, Stats) {
        self.parse_with_telemetry(text, &Telemetry::disabled())
    }

    /// Like [`VmProgram::parse_with_stats`], with telemetry hooks
    /// reporting to `telem` (production spans, memo traffic, backtracks)
    /// exactly as the interpreter's equivalent entry point does.
    pub fn parse_with_telemetry(
        &self,
        text: &str,
        telem: &Telemetry,
    ) -> (Result<SyntaxTree, ParseError>, Stats) {
        if text.len() > u32::MAX as usize {
            let input = Input::new("");
            let mut failures = Failures::new();
            failures.note(0, "input smaller than 4 GiB");
            return (Err(failures.to_error(&input)), Stats::default());
        }
        let mut m = Machine::new(self, text);
        m.install_telemetry(telem);
        let result = m.run();
        let outcome = match result {
            Ok((end, value)) if end == m.input.len() => {
                Ok(SyntaxTree::new(text, m.materialize(value)))
            }
            Ok((end, _)) => {
                m.note(end, "end of input");
                Err(m.failures.to_error(&m.input))
            }
            Err(_) => Err(m.failures.to_error(&m.input)),
        };
        m.finish_stats();
        (outcome, m.stats)
    }

    /// Parses `text` in SAX event mode: on a full match the semantic tree
    /// is streamed to `sink` as [`modpeg_runtime::ParseEvent`]s straight
    /// from the machine's arena — no owned tree is ever materialized. No
    /// events are delivered for failing parses.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the farthest failure when the
    /// input does not match (or does not match completely).
    pub fn parse_events(
        &self,
        text: &str,
        sink: &mut dyn modpeg_runtime::EventSink,
    ) -> Result<(), ParseError> {
        if text.len() > u32::MAX as usize {
            let input = Input::new("");
            let mut failures = Failures::new();
            failures.note(0, "input smaller than 4 GiB");
            return Err(failures.to_error(&input));
        }
        let mut m = Machine::new(self, text);
        let result = m.run();
        match result {
            Ok((end, value)) if end == m.input.len() => {
                m.emit(&value, sink);
                Ok(())
            }
            Ok((end, _)) => {
                m.note(end, "end of input");
                Err(m.failures.to_error(&m.input))
            }
            Err(_) => Err(m.failures.to_error(&m.input)),
        }
    }

    /// Parses under `gov`'s resource limits (deadline, fuel, recursion
    /// depth, memo-byte budget, cancellation), with the same
    /// deterministic abort semantics as the interpreter's governed entry
    /// points.
    pub fn parse_governed(
        &self,
        text: &str,
        gov: &Governor,
    ) -> (Result<SyntaxTree, ParseFault>, Stats) {
        self.parse_governed_telemetry(text, gov, &Telemetry::disabled())
    }

    /// [`VmProgram::parse_governed`] with telemetry hooks reporting to
    /// `telem` (including governor tick totals and abort events).
    pub fn parse_governed_telemetry(
        &self,
        text: &str,
        gov: &Governor,
        telem: &Telemetry,
    ) -> (Result<SyntaxTree, ParseFault>, Stats) {
        if text.len() > u32::MAX as usize {
            let input = Input::new("");
            let mut failures = Failures::new();
            failures.note(0, "input smaller than 4 GiB");
            return (
                Err(ParseFault::Syntax(failures.to_error(&input))),
                Stats::default(),
            );
        }
        // A pre-cancelled or pre-expired governor aborts before any work.
        if let Err(kind) = gov.poll() {
            return (Err(ParseFault::Abort(kind)), Stats::default());
        }
        let mut m = Machine::new(self, text);
        m.install_governor(gov);
        m.install_telemetry(telem);
        let result = m.run();
        let outcome = if let Some(kind) = m.aborted {
            // The abort overrides the nominal outcome: once a run aborts,
            // the unwinding value is untrustworthy (a `!p` on the unwind
            // path converts the abort-induced failure into a success it
            // never earned).
            Err(ParseFault::Abort(kind))
        } else {
            match result {
                Ok((end, value)) if end == m.input.len() => {
                    Ok(SyntaxTree::new(text, m.materialize(value)))
                }
                Ok((end, _)) => {
                    m.note(end, "end of input");
                    Err(ParseFault::Syntax(m.failures.to_error(&m.input)))
                }
                Err(_) => Err(ParseFault::Syntax(m.failures.to_error(&m.input))),
            }
        };
        m.finish_governed(gov);
        m.finish_stats();
        (outcome, m.stats)
    }

    // ----- accessors for the machine and disassembler -----

    pub(crate) fn op_at(&self, pc: u32) -> Op {
        self.chunk.ops[pc as usize]
    }

    pub(crate) fn lit(&self, i: u32) -> &LitConst {
        &self.chunk.lits[i as usize]
    }

    pub(crate) fn class(&self, i: u32) -> &ClassConst {
        &self.chunk.classes[i as usize]
    }

    pub(crate) fn kind(&self, i: u32) -> &NodeKind {
        &self.chunk.kinds[i as usize]
    }

    pub(crate) fn first(&self, i: u32) -> &FirstConst {
        &self.chunk.firsts[i as usize]
    }

    pub(crate) fn production_names(&self) -> Vec<String> {
        self.chunk.prods.iter().map(|p| p.name.clone()).collect()
    }

    pub(crate) fn chunk(&self) -> &compile::Chunk {
        &self.chunk
    }
}
