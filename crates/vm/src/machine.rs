//! The dispatch loop: a register-light machine executing assembled
//! bytecode against an input.
//!
//! The machine mirrors the tree-walking interpreter *observationally*:
//! identical syntax trees, identical accept/reject verdicts, identical
//! farthest-failure positions, and identical memoization traffic per
//! production (the conformance harness asserts all four). What changes
//! is the execution substrate — three explicit stacks instead of the
//! Rust call stack:
//!
//! * the **value stack** accumulates in-flight semantic values; value
//!   marks bracket the regions each repetition/capture owns,
//! * the **backtrack stack** holds resume points (pc, position, value
//!   depth, parser-state mark, suppression depth) for ordered choice,
//! * the **call stack** holds production applications (return pc, memo
//!   slot, telemetry span, value base).
//!
//! Every production pushes its own `Catch` entry before its body, so the
//! backtrack stack above a call frame always belongs to that frame —
//! failure dispatch never needs to repair the call stack.

use modpeg_runtime::{
    ChunkMemo, Fail, Failures, Governor, Input, MemoAnswer, MemoTable, NodeKind, ParseAbort,
    ScopedState, Span, StateMark, Stats, Value, DEFAULT_MAX_DEPTH,
};
use modpeg_telemetry::{SpanToken, Telemetry};

use crate::ops::{Op, NO_SLOT};
use crate::VmProgram;

/// A backtrack entry: everything needed to resume at `pc` as if the
/// speculative region never ran.
struct BtFrame {
    pc: u32,
    pos: u32,
    vlen: u32,
    mlen: u32,
    state: StateMark,
    suppress: u32,
}

/// A production application in flight.
#[derive(Clone, Copy)]
struct CallFrame {
    ret_pc: u32,
    prod: u32,
    pos0: u32,
    /// Value-stack depth at entry: the finishers consume exactly the
    /// values above this base.
    vbase: u32,
    /// Memo slot, or [`NO_SLOT`].
    slot: u32,
    push: bool,
    epoch_check: bool,
    span: SpanToken,
}

/// A value-stack mark (repetition/capture bracket).
#[derive(Clone, Copy)]
struct Mark {
    vlen: u32,
    pos: u32,
}

pub(crate) struct Machine<'p, 'i> {
    p: &'p VmProgram,
    pub(crate) input: Input<'i>,
    pc: u32,
    pub(crate) pos: u32,
    /// The production-value register: finishers write it, `Ret` reads it.
    acc: Value,
    vstack: Vec<Value>,
    marks: Vec<Mark>,
    bts: Vec<BtFrame>,
    calls: Vec<CallFrame>,
    memo: ChunkMemo,
    /// Whether semantic values are built in the memo's arena (the memo is
    /// always chunked here, so this mirrors the program's toggle).
    use_arena: bool,
    pub(crate) state: ScopedState,
    pub(crate) failures: Failures,
    pub(crate) stats: Stats,
    suppress: u32,
    telem: Telemetry,
    prod_depth: u32,
    gov: Option<&'p Governor>,
    pub(crate) aborted: Option<ParseAbort>,
    max_depth: u32,
    memo_budget: u64,
    memo_frozen: bool,
}

impl<'p, 'i> Machine<'p, 'i> {
    pub(crate) fn new(p: &'p VmProgram, text: &'i str) -> Self {
        let input = Input::new(text);
        // Always the chunked table: which table backs the memo changes
        // only constant factors, never answers, and the VM has no
        // incremental entry point that would need table handoff.
        let memo = ChunkMemo::new(p.memo_slot_count(), input.len());
        let failures = if p.config().errors {
            Failures::new()
        } else {
            Failures::recording()
        };
        Machine {
            p,
            input,
            pc: 0,
            pos: 0,
            acc: Value::Unit,
            vstack: Vec::with_capacity(64),
            marks: Vec::with_capacity(32),
            bts: Vec::with_capacity(64),
            calls: Vec::with_capacity(64),
            memo,
            use_arena: p.arena_enabled(),
            state: ScopedState::new(),
            failures,
            stats: Stats::default(),
            suppress: 0,
            telem: Telemetry::disabled(),
            prod_depth: 0,
            gov: None,
            aborted: None,
            max_depth: u32::MAX,
            memo_budget: u64::MAX,
            memo_frozen: false,
        }
    }

    /// Puts the run under `gov`'s limits (depth falls back to
    /// [`DEFAULT_MAX_DEPTH`] — stack safety is non-negotiable once a run
    /// is governed — and the memo budget to unlimited).
    pub(crate) fn install_governor(&mut self, gov: &'p Governor) {
        self.max_depth = gov.max_depth().unwrap_or(DEFAULT_MAX_DEPTH);
        self.memo_budget = gov.memo_budget().unwrap_or(u64::MAX);
        self.gov = Some(gov);
    }

    pub(crate) fn install_telemetry(&mut self, telem: &Telemetry) {
        if telem.is_enabled() {
            telem.set_names(self.p.production_names());
            telem.set_input_len(self.input.len());
            self.telem = telem.clone();
        }
    }

    pub(crate) fn finish_governed(&mut self, gov: &Governor) {
        self.stats.gov_ticks = gov.steps();
        self.stats.gov_stride_refills = gov.stride_refills();
        self.telem.gov_ticks(gov.steps(), gov.stride_refills());
    }

    pub(crate) fn finish_stats(&mut self) {
        self.stats.memo_bytes = self.memo.retained_bytes();
        self.stats.failure_records = self.failures.recorded_len() as u64;
        self.stats.failure_bytes = self.failures.retained_bytes() as u64;
    }

    pub(crate) fn note(&mut self, pos: u32, desc: &str) {
        if self.suppress == 0 {
            self.failures.note(pos, desc);
        }
    }

    /// One governed evaluation step; `true` means the run must unwind.
    #[inline]
    fn guard_fails(&mut self) -> bool {
        if self.aborted.is_some() {
            return true;
        }
        if let Some(gov) = self.gov {
            if let Err(kind) = gov.tick() {
                self.aborted = Some(kind);
                return true;
            }
        }
        false
    }

    #[cold]
    fn abort(&mut self, kind: ParseAbort) {
        if let Some(gov) = self.gov {
            gov.trip(kind);
        }
        if self.aborted.is_none() {
            self.aborted = Some(kind);
            self.telem.gov_abort(kind.name());
        }
    }

    /// Failure dispatch: restore the innermost backtrack entry and resume
    /// at its pc. `false` means the entry stacks are exhausted — the parse
    /// as a whole fails.
    fn fail(&mut self) -> bool {
        match self.bts.pop() {
            Some(f) => {
                self.pos = f.pos;
                self.vstack.truncate(f.vlen as usize);
                self.marks.truncate(f.mlen as usize);
                self.state.rollback(f.state);
                self.suppress = f.suppress;
                self.pc = f.pc;
                true
            }
            None => false,
        }
    }

    fn push_bt(&mut self, target: u32) {
        self.bts.push(BtFrame {
            pc: target,
            pos: self.pos,
            vlen: self.vstack.len() as u32,
            mlen: self.marks.len() as u32,
            state: self.state.mark(),
            suppress: self.suppress,
        });
    }

    fn begin_call(&mut self, prod: u32, target: u32, slot: u32, push: bool, epoch_check: bool) {
        self.stats.productions_evaluated += 1;
        let span = self.telem.enter(prod, self.pos, self.prod_depth);
        self.prod_depth += 1;
        self.calls.push(CallFrame {
            ret_pc: self.pc,
            prod,
            pos0: self.pos,
            vbase: self.vstack.len() as u32,
            slot,
            push,
            epoch_check,
            span,
        });
        self.pc = target;
    }

    /// Mirrors the interpreter's `store_answer`: suppressed after an abort
    /// (in-flight results may be tainted) or under transient-only
    /// fallback, budget-enforced on every store.
    fn store_answer(&mut self, prod: u32, slot: u32, pos: u32, ans: MemoAnswer) {
        if self.aborted.is_some() || self.memo_frozen {
            return;
        }
        self.telem.memo_store(prod, pos, ans.outcome.is_some());
        self.memo.store(slot, pos, ans);
        self.stats.memo_stores += 1;
        if self.memo_budget != u64::MAX && self.memo.retained_bytes() > self.memo_budget {
            self.enforce_memo_budget(pos);
        }
    }

    /// The memo-budget degradation ladder, rung for rung the
    /// interpreter's: evict cold columns, fall back to transient-only
    /// parsing, abort only when the empty table itself exceeds the budget.
    #[cold]
    fn enforce_memo_budget(&mut self, hot_from: u32) {
        if self.memo.retained_bytes() <= self.memo_budget {
            return;
        }
        self.stats.gov_evictions += 1;
        let freed = self.memo.evict_cold(hot_from).columns_freed;
        self.stats.gov_columns_evicted += freed;
        self.telem
            .memo_evict(hot_from, freed.min(u64::from(u32::MAX)) as u32);
        if self.memo.retained_bytes() <= self.memo_budget {
            return;
        }
        self.memo_frozen = true;
        self.stats.gov_transient_fallbacks += 1;
        self.memo.evict_all();
        if self.memo.retained_bytes() <= self.memo_budget {
            return;
        }
        self.abort(ParseAbort::MemoBudget);
    }

    // ----- value construction (identical accounting to the interpreter) -----

    fn make_text(&mut self, lo: u32, hi: u32) -> Value {
        if self.p.config().text_only {
            Value::Text(Span::new(lo, hi))
        } else {
            let s: std::rc::Rc<str> = std::rc::Rc::from(self.input.slice(Span::new(lo, hi)));
            self.stats.strings_built += 1;
            self.stats.value_bytes += (hi - lo) as u64 + 16;
            Value::OwnedText(s)
        }
    }

    fn make_node(&mut self, kind: &NodeKind, children: Vec<Value>, span: Option<Span>) -> Value {
        self.stats.nodes_built += 1;
        if self.use_arena {
            self.stats.value_bytes += (modpeg_runtime::Arena::NODE_BYTES
                + children.len() * std::mem::size_of::<Value>())
                as u64;
            return Value::ArenaNode(self.memo.arena_mut().alloc_node(kind.clone(), children, span));
        }
        self.stats.value_bytes += (std::mem::size_of::<modpeg_runtime::Node>()
            + children.capacity() * std::mem::size_of::<Value>())
            as u64;
        match span {
            Some(s) => Value::Node(std::rc::Rc::new(modpeg_runtime::Node::with_span(
                kind.clone(),
                children,
                s,
            ))),
            None => Value::Node(std::rc::Rc::new(modpeg_runtime::Node::new(
                kind.clone(),
                children,
            ))),
        }
    }

    fn make_list(&mut self, items: Vec<Value>) -> Value {
        if self.use_arena {
            let items = if items
                .iter()
                .any(|v| matches!(v, Value::List(_) | Value::ArenaList(_)))
            {
                let arena = self.memo.arena();
                let mut flat = Vec::with_capacity(items.len());
                for v in items {
                    match v {
                        Value::List(l) => flat.extend(l.iter().cloned()),
                        Value::ArenaList(r) => flat.extend(arena.children(r).iter().cloned()),
                        other => flat.push(other),
                    }
                }
                flat
            } else {
                items
            };
            self.stats.lists_built += 1;
            self.stats.value_bytes += (modpeg_runtime::Arena::NODE_BYTES
                + items.len() * std::mem::size_of::<Value>())
                as u64;
            return Value::ArenaList(self.memo.arena_mut().alloc_list(items));
        }
        let items = if items.iter().any(|v| matches!(v, Value::List(_))) {
            let mut flat = Vec::with_capacity(items.len());
            for v in items {
                match v {
                    Value::List(l) => flat.extend(l.iter().cloned()),
                    other => flat.push(other),
                }
            }
            flat
        } else {
            items
        };
        self.stats.lists_built += 1;
        self.stats.value_bytes +=
            (std::mem::size_of::<Vec<Value>>() + items.capacity() * std::mem::size_of::<Value>())
                as u64;
        Value::list(items)
    }

    /// Detaches `value` from the machine's arena before it escapes into a
    /// [`modpeg_runtime::SyntaxTree`]. Legacy trees pass through as-is.
    pub(crate) fn materialize(&self, value: Value) -> Value {
        if self.use_arena {
            self.memo.arena().copy_out(&value)
        } else {
            value
        }
    }

    /// Streams `value` as SAX events straight from the machine's arena
    /// (the arena walker also handles legacy heap values).
    pub(crate) fn emit(&self, value: &Value, sink: &mut dyn modpeg_runtime::EventSink) {
        self.memo.arena().emit_events(value, sink);
    }

    /// The name a state operation works with: the operand's first textual
    /// value when it has one, otherwise the whole matched span.
    fn state_operand(&self, m: Mark) -> &str {
        let text = self.input.text();
        self.vstack
            .get(m.vlen as usize)
            .and_then(|v| v.as_text(text))
            .unwrap_or(&text[m.pos as usize..self.pos as usize])
    }

    // ----- the dispatch loop -----

    /// Runs the program from the bootstrap sequence to `Halt` or overall
    /// failure, returning the end position and root value on success.
    pub(crate) fn run(&mut self) -> Result<(u32, Value), Fail> {
        let p = self.p;
        macro_rules! dispatch_fail {
            () => {{
                if !self.fail() {
                    return Err(Fail);
                }
                continue;
            }};
        }
        loop {
            let op = p.op_at(self.pc);
            self.pc += 1;
            match op {
                // ----- control flow -----
                Op::Jump(t) => self.pc = t,
                Op::Choice(t) | Op::Catch(t) => self.push_bt(t),
                Op::Commit(t) => {
                    self.bts.pop();
                    self.pc = t;
                }
                Op::BackCommit(t) => {
                    let f = self.bts.pop().expect("BackCommit under its Choice");
                    self.pos = f.pos;
                    self.vstack.truncate(f.vlen as usize);
                    self.marks.truncate(f.mlen as usize);
                    self.state.rollback(f.state);
                    self.suppress = f.suppress;
                    self.pc = t;
                }
                Op::FailTwice => {
                    self.bts.pop();
                    dispatch_fail!();
                }
                Op::Fail => dispatch_fail!(),
                Op::LoopCommitNZ(body) => {
                    // Pop the iteration's entry and loop back to the head,
                    // whose `GuardTick` then runs with no loop entry on
                    // the stack (an abort propagates outward, exactly like
                    // the interpreter's `?` on its per-iteration guard)
                    // and whose `Choice` re-arms a fresh entry.
                    let f = self.bts.pop().expect("loop entry under its Choice");
                    if self.pos > f.pos {
                        self.pc = body;
                    } else {
                        // Zero-width iteration: drop its values, keep its
                        // state changes (the interpreter's loop guard).
                        self.vstack.truncate(f.vlen as usize);
                        self.marks.truncate(f.mlen as usize);
                    }
                }
                Op::GuardTick => {
                    if self.guard_fails() {
                        dispatch_fail!();
                    }
                }
                Op::Halt => {
                    let root = self.vstack.pop().expect("bootstrap pushed the root value");
                    return Ok((self.pos, root));
                }

                // ----- calls -----
                Op::Call { prod, target, push } => {
                    if self.calls.len() as u32 >= self.max_depth {
                        self.abort(ParseAbort::DepthExceeded);
                        dispatch_fail!();
                    }
                    if self.guard_fails() {
                        dispatch_fail!();
                    }
                    self.begin_call(prod, target, NO_SLOT, push, false);
                }
                Op::MemoCall {
                    prod,
                    target,
                    slot,
                    push,
                    epoch_check,
                } => {
                    if self.calls.len() as u32 >= self.max_depth {
                        self.abort(ParseAbort::DepthExceeded);
                        dispatch_fail!();
                    }
                    // Ticking before the probe keeps the fuel cost of a
                    // position uniform across hits and misses.
                    if self.guard_fails() {
                        dispatch_fail!();
                    }
                    self.stats.memo_probes += 1;
                    self.telem.memo_probe(prod, self.pos);
                    let mut hit: Option<Option<(u32, Value)>> = None;
                    if let Some(ans) = self.memo.probe_settled(slot, self.pos) {
                        if epoch_check && ans.epoch != self.state.epoch() {
                            self.stats.memo_stale += 1;
                        } else {
                            self.stats.memo_hits += 1;
                            hit = Some(ans.outcome.as_ref().map(|(e, v)| (*e, v.clone())));
                        }
                    }
                    match hit {
                        Some(outcome) => {
                            self.telem
                                .memo_hit(prod, self.pos, self.prod_depth, outcome.is_some());
                            match outcome {
                                Some((end, v)) => {
                                    self.pos = end;
                                    if push {
                                        self.vstack.push(v);
                                    }
                                }
                                None => dispatch_fail!(),
                            }
                        }
                        None => self.begin_call(prod, target, slot, push, epoch_check),
                    }
                }
                Op::Ret => {
                    let f = self.calls.pop().expect("Ret with a call in flight");
                    let catch = self.bts.pop();
                    debug_assert!(catch.is_some(), "production catch entry present at Ret");
                    debug_assert_eq!(self.vstack.len() as u32, f.vbase, "finisher consumed body");
                    self.prod_depth -= 1;
                    self.telem
                        .exit(f.span, f.prod, f.pos0, self.prod_depth, self.pos, true);
                    if f.slot != NO_SLOT {
                        let epoch = if f.epoch_check { self.state.epoch() } else { 0 };
                        let ans = MemoAnswer::success(epoch, self.pos, self.acc.clone());
                        self.store_answer(f.prod, f.slot, f.pos0, ans);
                    }
                    if f.push {
                        self.vstack
                            .push(std::mem::replace(&mut self.acc, Value::Unit));
                    }
                    self.pc = f.ret_pc;
                }
                Op::RetFail => {
                    // Reached via the production's catch entry, which
                    // already restored position/values/state/suppression.
                    let f = self.calls.pop().expect("RetFail with a call in flight");
                    self.prod_depth -= 1;
                    self.telem
                        .exit(f.span, f.prod, f.pos0, self.prod_depth, f.pos0, false);
                    if f.slot != NO_SLOT {
                        let epoch = if f.epoch_check { self.state.epoch() } else { 0 };
                        self.store_answer(f.prod, f.slot, f.pos0, MemoAnswer::fail(epoch));
                    }
                    dispatch_fail!();
                }

                // ----- terminals -----
                Op::Any => match self.input.char_at(self.pos) {
                    Some((_, len)) => self.pos += len,
                    None => {
                        self.note(self.pos, "any character");
                        dispatch_fail!();
                    }
                },
                Op::Lit(i) => {
                    let lit = p.lit(i);
                    self.stats.terminal_comparisons += lit.text.len() as u64;
                    if self.input.starts_with(self.pos, &lit.text) {
                        self.pos += lit.text.len() as u32;
                    } else {
                        self.note(self.pos, &lit.desc);
                        dispatch_fail!();
                    }
                }
                Op::LitBytes(i) => {
                    let lit = p.lit(i);
                    let start = self.pos;
                    let mut cur = start;
                    let mut ok = true;
                    for &b in lit.text.as_bytes() {
                        self.stats.terminal_comparisons += 1;
                        match self.input.byte_at(cur) {
                            Some(x) if x == b => cur += 1,
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        self.pos = cur;
                    } else {
                        self.note(start, &lit.desc);
                        dispatch_fail!();
                    }
                }
                Op::Class(i) => {
                    let c = p.class(i);
                    self.stats.terminal_comparisons += 1;
                    match self.input.char_at(self.pos) {
                        Some((ch, len)) if c.class.matches(ch) => self.pos += len,
                        _ => {
                            self.note(self.pos, &c.desc);
                            dispatch_fail!();
                        }
                    }
                }

                // ----- superinstructions -----
                Op::ClassStar(i) => {
                    let c = p.class(i);
                    loop {
                        // A repetition over bare terminals never passes a
                        // call, so it ticks on its own (the final failing
                        // probe included — matching the interpreter).
                        if self.guard_fails() {
                            break;
                        }
                        self.stats.terminal_comparisons += 1;
                        match self.input.char_at(self.pos) {
                            Some((ch, len)) if c.class.matches(ch) => self.pos += len,
                            _ => {
                                self.note(self.pos, &c.desc);
                                break;
                            }
                        }
                    }
                    if self.aborted.is_some() {
                        dispatch_fail!();
                    }
                }
                Op::ClassPlus(i) => {
                    let c = p.class(i);
                    // The mandatory first match carries no guard tick
                    // (the interpreter's `e+` evaluates `e` once before
                    // entering the guarded loop).
                    self.stats.terminal_comparisons += 1;
                    match self.input.char_at(self.pos) {
                        Some((ch, len)) if c.class.matches(ch) => self.pos += len,
                        _ => {
                            self.note(self.pos, &c.desc);
                            dispatch_fail!();
                        }
                    }
                    loop {
                        if self.guard_fails() {
                            break;
                        }
                        self.stats.terminal_comparisons += 1;
                        match self.input.char_at(self.pos) {
                            Some((ch, len)) if c.class.matches(ch) => self.pos += len,
                            _ => {
                                self.note(self.pos, &c.desc);
                                break;
                            }
                        }
                    }
                    if self.aborted.is_some() {
                        dispatch_fail!();
                    }
                }
                Op::NotClass(i) => {
                    let c = p.class(i);
                    self.stats.terminal_comparisons += 1;
                    if matches!(self.input.char_at(self.pos), Some((ch, _)) if c.class.matches(ch))
                    {
                        dispatch_fail!();
                    }
                }
                Op::NotLit(i) => {
                    let lit = p.lit(i);
                    self.stats.terminal_comparisons += lit.text.len() as u64;
                    if self.input.starts_with(self.pos, &lit.text) {
                        dispatch_fail!();
                    }
                }
                Op::NotAny => {
                    if self.input.char_at(self.pos).is_some() {
                        dispatch_fail!();
                    }
                }
                Op::AndClass(i) => {
                    let c = p.class(i);
                    self.stats.terminal_comparisons += 1;
                    if !matches!(self.input.char_at(self.pos), Some((ch, _)) if c.class.matches(ch))
                    {
                        dispatch_fail!();
                    }
                }

                // ----- dispatch and backtrack accounting -----
                Op::DispatchSkip { first, target } => {
                    let f = p.first(first);
                    if !f.set.admits(self.input.byte_at(self.pos)) {
                        self.note(self.pos, &f.desc);
                        self.pc = target;
                    }
                }
                Op::AltBacktrack(t) => {
                    let f = *self.calls.last().expect("alternative inside a production");
                    self.stats.backtracks += 1;
                    self.telem.backtrack(f.prod, f.pos0, self.prod_depth);
                    self.pc = t;
                }
                Op::ChoiceBacktrack(t) => {
                    self.stats.backtracks += 1;
                    self.pc = t;
                }

                // ----- value construction -----
                Op::MarkHere => {
                    self.marks.push(Mark {
                        vlen: self.vstack.len() as u32,
                        pos: self.pos,
                    });
                }
                Op::NormalizeOpt => {
                    self.bts.pop();
                    let m = self.marks.pop().expect("optional mark");
                    if self.vstack.len() - m.vlen as usize >= 2 {
                        let vs = self.vstack.split_off(m.vlen as usize);
                        let list = self.make_list(vs);
                        self.vstack.push(list);
                    }
                }
                Op::AbsentOpt { push_absent } => {
                    self.marks.pop();
                    if push_absent {
                        self.vstack.push(Value::Absent);
                    }
                }
                Op::StarFinish { make } => {
                    let m = self.marks.pop().expect("star mark");
                    if make {
                        let vs = self.vstack.split_off(m.vlen as usize);
                        let list = self.make_list(vs);
                        self.vstack.push(list);
                    }
                }
                Op::PlusFinish { collect } => {
                    let m1 = self.marks.pop().expect("plus rest mark");
                    let m0 = self.marks.pop().expect("plus first mark");
                    if collect {
                        // Two list constructions with one splice level each
                        // — byte-for-byte the interpreter's `e+` shape.
                        let rest = self.vstack.split_off(m1.vlen as usize);
                        let rest_list = self.make_list(rest);
                        let mut items = self.vstack.split_off(m0.vlen as usize);
                        match &rest_list {
                            Value::List(l) => items.extend(l.iter().cloned()),
                            Value::ArenaList(r) => {
                                items.extend(self.memo.arena().children(*r).iter().cloned())
                            }
                            _ => {}
                        }
                        let list = self.make_list(items);
                        self.vstack.push(list);
                    } else {
                        self.vstack.truncate(m0.vlen as usize);
                    }
                }
                Op::CaptureFinish { push } => {
                    let m = self.marks.pop().expect("capture mark");
                    self.vstack.truncate(m.vlen as usize);
                    if push {
                        let text = self.make_text(m.pos, self.pos);
                        self.vstack.push(text);
                    }
                }
                Op::DropMark => {
                    let m = self.marks.pop().expect("void mark");
                    self.vstack.truncate(m.vlen as usize);
                }
                Op::PushAcc => {
                    self.vstack
                        .push(std::mem::replace(&mut self.acc, Value::Unit));
                }
                Op::PopAcc => {
                    self.acc = self.vstack.pop().expect("seed on the value stack");
                }
                Op::FoldNode { kind, with_span } => {
                    let f = *self.calls.last().expect("fold inside a production");
                    // The seed sits at the frame base; the tail's values
                    // are above it — together they are the new node's
                    // children, seed first.
                    let children = self.vstack.split_off(f.vbase as usize);
                    let span = with_span.then(|| Span::new(f.pos0, self.pos));
                    let node = self.make_node(p.kind(kind), children, span);
                    self.vstack.push(node);
                }
                Op::MakeNodeFinish {
                    kind,
                    passthrough,
                    with_span,
                } => {
                    let f = *self.calls.last().expect("finisher inside a production");
                    let mut children = self.vstack.split_off(f.vbase as usize);
                    self.acc = if passthrough && children.len() == 1 {
                        children.pop().expect("len checked")
                    } else {
                        let span = with_span.then(|| Span::new(f.pos0, self.pos));
                        self.make_node(p.kind(kind), children, span)
                    };
                }
                Op::MakeTextFinish { take_inner } => {
                    let f = *self.calls.last().expect("finisher inside a production");
                    let mut inner = None;
                    if take_inner {
                        if let Some(v @ (Value::Text(_) | Value::OwnedText(_))) =
                            self.vstack.get(f.vbase as usize)
                        {
                            inner = Some(v.clone());
                        }
                    }
                    self.vstack.truncate(f.vbase as usize);
                    self.acc = match inner {
                        Some(v) => v,
                        None => self.make_text(f.pos0, self.pos),
                    };
                }
                Op::UnitFinish => {
                    let f = *self.calls.last().expect("finisher inside a production");
                    self.vstack.truncate(f.vbase as usize);
                    self.acc = Value::Unit;
                }

                // ----- predicates and state -----
                Op::IncSuppress => self.suppress += 1,
                Op::StateDefine { keep } => {
                    let m = self.marks.pop().expect("state mark");
                    let name = self.state_operand(m).to_owned();
                    self.state.define(&name);
                    if !keep {
                        self.vstack.truncate(m.vlen as usize);
                    }
                }
                Op::StateIsDef { keep } => {
                    let m = self.marks.pop().expect("state mark");
                    let defined = self.state.is_defined(self.state_operand(m));
                    if defined {
                        if !keep {
                            self.vstack.truncate(m.vlen as usize);
                        }
                    } else {
                        self.note(m.pos, "defined name");
                        dispatch_fail!();
                    }
                }
                Op::StateIsNotDef { keep } => {
                    let m = self.marks.pop().expect("state mark");
                    let defined = self.state.is_defined(self.state_operand(m));
                    if defined {
                        self.note(m.pos, "undefined name");
                        dispatch_fail!();
                    } else if !keep {
                        self.vstack.truncate(m.vlen as usize);
                    }
                }
                Op::ScopePush => self.state.push_scope(),
                Op::ScopePopCommit => {
                    self.state.pop_scope();
                    self.bts.pop();
                }
            }
        }
    }

}
