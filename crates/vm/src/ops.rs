//! The instruction set of the parsing machine.
//!
//! Instructions are a fixed-size `Copy` enum indexing into side-table
//! constant pools (literals, character classes, node kinds, first sets),
//! in the tradition of LPeg's parsing machine and Nez's MOZ instruction
//! set: control flow is expressed through a backtrack-entry stack
//! (`Choice`/`Commit`/`BackCommit`/`FailTwice`), nonterminals through an
//! explicit call stack (`Call`/`MemoCall`/`Ret`/`RetFail`), and the
//! hottest PEG shapes through superinstructions (`ClassStar`,
//! `ClassPlus`, `NotClass`, `NotLit`, `NotAny`, `AndClass`, and
//! whole-literal `Lit` matching).
//!
//! Every jump target is an absolute instruction index (`u32`), resolved
//! by the assembler; the machine never computes relative offsets.

use std::rc::Rc;

use modpeg_core::analysis::FirstSet;
use modpeg_core::CharClass;
use modpeg_runtime::NodeKind;

/// Sentinel for "no memo slot" in a [`Op::MemoCall`]-free call frame.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// One machine instruction. `u32` payloads are absolute jump targets or
/// constant-pool indices (the mnemonic says which).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    // ----- control flow -----
    /// Unconditional jump.
    Jump(u32),
    /// Push a backtrack entry resuming at the target on failure.
    Choice(u32),
    /// Pop the top backtrack entry (keep current progress) and jump.
    Commit(u32),
    /// Pop the top backtrack entry, restore its saved machine state
    /// (position, values, parser state, suppression), and jump — the
    /// success path of an `&p` predicate.
    BackCommit(u32),
    /// Pop and discard the top backtrack entry, then fail — the
    /// "inner matched" path of a `!p` predicate.
    FailTwice,
    /// Fail: dispatch to the top backtrack entry.
    Fail,
    /// Production prologue: push the catch entry every production keeps
    /// beneath its body (its target is the production's `RetFail`).
    Catch(u32),
    /// Star/plus back-edge: pop the loop's backtrack entry; if the
    /// position advanced this iteration, jump back to the body; on a
    /// zero-width match, discard the iteration's values and fall
    /// through to the loop exit (matching the interpreter's
    /// infinite-loop guard, which keeps state changes but drops values).
    LoopCommitNZ(u32),
    /// One governed evaluation step (fuel/deadline/cancellation).
    GuardTick,
    /// End of the bootstrap sequence: the machine halts successfully.
    Halt,

    // ----- calls -----
    /// Apply an unmemoized production: `target` is its entry pc, `push`
    /// says whether the caller wants its value on the value stack.
    Call { prod: u32, target: u32, push: bool },
    /// Apply a memoized production: probe `slot` first (validating the
    /// state epoch when `epoch_check`), falling back to a plain call on
    /// a miss. This is the memoized-nonterminal superinstruction — a
    /// packrat hit costs no call frame at all.
    MemoCall { prod: u32, target: u32, slot: u32, push: bool, epoch_check: bool },
    /// Production epilogue (success): store the memo answer, emit
    /// telemetry, pop call + catch entries, resume the caller.
    Ret,
    /// Production epilogue (failure): store the failure answer, emit
    /// telemetry, pop the call frame, keep failing into the caller.
    RetFail,

    // ----- terminals -----
    /// Match any single character.
    Any,
    /// Match `lits[i]` by whole-slice comparison (string-match config).
    Lit(u32),
    /// Match `lits[i]` byte-at-a-time (unoptimized literal matching).
    LitBytes(u32),
    /// Match one character of `classes[i]`.
    Class(u32),

    // ----- superinstructions -----
    /// `[c]*` — greedy character-class repetition in one instruction.
    ClassStar(u32),
    /// `[c]+` — one mandatory match, then `ClassStar`.
    ClassPlus(u32),
    /// `![c]` without backtrack-entry traffic.
    NotClass(u32),
    /// `!"lit"` without backtrack-entry traffic (string-match config).
    NotLit(u32),
    /// `!.` — end-of-input test in one instruction.
    NotAny,
    /// `&[c]` without backtrack-entry traffic.
    AndClass(u32),

    // ----- dispatch and backtrack accounting -----
    /// Terminal dispatch: if `firsts[i]` does not admit the next input
    /// byte, record the expected-set failure and jump to the target
    /// (the next alternative) without attempting this one.
    DispatchSkip { first: u32, target: u32 },
    /// A production alternative failed: count the backtrack, emit the
    /// backtrack telemetry event, and jump to the next alternative.
    AltBacktrack(u32),
    /// A choice arm (or left-recursive tail) failed: count the
    /// backtrack (no telemetry event — mirrors the interpreter) and
    /// jump to the next arm.
    ChoiceBacktrack(u32),

    // ----- value construction -----
    /// Push a value-stack mark (current depth + input position).
    MarkHere,
    /// Commit an optional that matched: pop the loop's backtrack entry
    /// and mark; if the body pushed two or more values, collapse them
    /// into one list (the interpreter's `normalize_opt`).
    NormalizeOpt,
    /// An optional that did not match: pop the mark and, when the
    /// optional yields into a value-wanting context, push
    /// `Value::Absent`.
    AbsentOpt { push_absent: bool },
    /// Star exit: pop the mark; when collecting, wrap everything the
    /// loop pushed into one list value.
    StarFinish { make: bool },
    /// Plus exit: pop the rest-mark and first-mark; when collecting,
    /// build the rest list, splice it after the first iteration's
    /// values, and push the combined list (two list constructions —
    /// exactly the interpreter's shape).
    PlusFinish { collect: bool },
    /// `$p` exit: pop the mark, drop the body's values, and (when the
    /// context wants a value) push the matched text.
    CaptureFinish { push: bool },
    /// Drop a mark and every value above it (void-context cleanup).
    DropMark,
    /// Move the accumulator onto the value stack (left-recursion seed).
    PushAcc,
    /// Move the top of the value stack into the accumulator.
    PopAcc,
    /// Fold one left-recursive tail: wrap the seed (at the frame base)
    /// plus the tail's values into a node, which becomes the new seed.
    FoldNode { kind: u32, with_span: bool },
    /// Node-production finisher: wrap the frame's values into a node in
    /// the accumulator (or pass a lone child through).
    MakeNodeFinish { kind: u32, passthrough: bool, with_span: bool },
    /// Text-production finisher: take the first inner textual value, or
    /// the matched span.
    MakeTextFinish { take_inner: bool },
    /// Void-production finisher: the accumulator becomes `Unit`.
    UnitFinish,

    // ----- predicates and state -----
    /// Enter a predicate: suppress failure recording (the matching
    /// decrement happens via backtrack-entry restoration).
    IncSuppress,
    /// `^=` — define the name the body matched, keeping or dropping the
    /// body's values per the surrounding context.
    StateDefine { keep: bool },
    /// `^?` — fail unless the matched name is defined.
    StateIsDef { keep: bool },
    /// `^!` — fail if the matched name is defined.
    StateIsNotDef { keep: bool },
    /// Open a state scope.
    ScopePush,
    /// Close a state scope and pop the scope's backtrack entry.
    ScopePopCommit,
}

impl Op {
    /// Rewrites the instruction's jump target (assembler backpatching).
    pub(crate) fn set_target(&mut self, t: u32) {
        match self {
            Op::Jump(x)
            | Op::Choice(x)
            | Op::Commit(x)
            | Op::BackCommit(x)
            | Op::Catch(x)
            | Op::LoopCommitNZ(x)
            | Op::AltBacktrack(x)
            | Op::ChoiceBacktrack(x)
            | Op::Call { target: x, .. }
            | Op::MemoCall { target: x, .. }
            | Op::DispatchSkip { target: x, .. } => *x = t,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }
}

/// A literal constant: the text to match plus its failure description.
#[derive(Debug, Clone)]
pub struct LitConst {
    pub(crate) text: Rc<str>,
    pub(crate) desc: Rc<str>,
}

/// A character-class constant plus its failure description.
#[derive(Debug, Clone)]
pub struct ClassConst {
    pub(crate) class: CharClass,
    pub(crate) desc: Rc<str>,
}

/// A terminal-dispatch constant: the first set plus the expected-set
/// description recorded when dispatch skips an alternative.
#[derive(Debug, Clone)]
pub struct FirstConst {
    pub(crate) set: FirstSet,
    pub(crate) desc: Rc<str>,
}

/// Per-production metadata the machine and disassembler need.
#[derive(Debug, Clone)]
pub struct ProdInfo {
    pub(crate) name: String,
    pub(crate) entry: u32,
}

/// Re-export used by the machine for node construction.
pub(crate) type KindConst = NodeKind;
