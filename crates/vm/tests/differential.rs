//! Differential tests: the bytecode machine must be observationally
//! identical to the tree-walking interpreter — same trees, same
//! verdicts, same farthest-failure offsets, same governed aborts, and
//! the same per-production memoization telemetry.

use modpeg_core::Grammar;
use modpeg_interp::{CompiledGrammar, OptConfig};
use modpeg_runtime::{CancelToken, Governor, ParseAbort, ParseFault};
use modpeg_telemetry::{mask, MetricsRegistry, Telemetry};
use modpeg_vm::{VmError, VmProgram};

/// Configurations the bytecode encodes (iterative repetition and
/// fold-based left recursion enabled), from barely-eligible to full.
fn vm_configs() -> Vec<OptConfig> {
    vec![
        OptConfig::cumulative(7),
        OptConfig::cumulative(10),
        OptConfig::cumulative(13),
        OptConfig::incremental(),
        OptConfig::all(),
    ]
}

fn bundled() -> Vec<(&'static str, Grammar)> {
    vec![
        ("calc", modpeg_grammars::calc_grammar().expect("calc compiles")),
        ("json", modpeg_grammars::json_grammar().expect("json compiles")),
        ("java", modpeg_grammars::java_grammar().expect("java compiles")),
        ("c", modpeg_grammars::c_grammar().expect("c compiles")),
        ("tiny", modpeg_grammars::tiny_grammar().expect("tiny compiles")),
    ]
}

fn inputs_for(name: &str) -> Vec<String> {
    let mut docs: Vec<String> = match name {
        "calc" => (0..6)
            .map(|s| modpeg_workload::calc_expression(s, 400))
            .collect(),
        "json" => (0..6)
            .map(|s| modpeg_workload::json_document(s, 400))
            .collect(),
        "java" => (0..4)
            .map(|s| modpeg_workload::java_program(s, 500))
            .collect(),
        "c" => (0..4).map(|s| modpeg_workload::c_program(s, 500)).collect(),
        _ => vec!["aab".into(), "ab".into(), "".into()],
    };
    // Rejections and edge shapes: the farthest-failure offset must agree
    // on these too.
    docs.extend(
        [
            "", " ", "(", ")", "1 +", "{\"a\": }", "class {", "int x = ;", "\u{3b1}\u{3b2}",
            "((((((((",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    docs
}

fn describe(r: &Result<modpeg_runtime::SyntaxTree, modpeg_runtime::ParseError>) -> String {
    match r {
        Ok(t) => format!("accept: {}", t.to_sexpr()),
        Err(e) => format!("reject at {}", e.offset()),
    }
}

#[test]
fn trees_and_verdicts_agree_with_interp() {
    for (name, grammar) in bundled() {
        for cfg in vm_configs() {
            let interp = CompiledGrammar::compile(&grammar, cfg).expect("interp compiles");
            let vm = VmProgram::from_compiled(&interp).expect("vm compiles");
            for input in inputs_for(name) {
                let want = describe(&interp.parse(&input));
                let got = describe(&vm.parse(&input));
                assert_eq!(
                    got, want,
                    "{name} diverged on {:?} under {:?}",
                    &input[..input.len().min(80)],
                    cfg
                );
            }
        }
    }
}

#[test]
fn stats_core_counters_agree_with_interp_at_full_opt() {
    // The chunked memo table is always used by the VM, so memo-byte
    // accounting can differ below full optimization; at `all()` the
    // interpreter uses the same table and the evaluation is isomorphic.
    for (name, grammar) in bundled() {
        let interp = CompiledGrammar::compile(&grammar, OptConfig::all()).expect("compiles");
        let vm = VmProgram::from_compiled(&interp).expect("vm compiles");
        for input in inputs_for(name) {
            let (_, si) = interp.parse_with_stats(&input);
            let (_, sv) = vm.parse_with_stats(&input);
            assert_eq!(
                (si.productions_evaluated, si.memo_probes, si.memo_hits, si.memo_stale),
                (sv.productions_evaluated, sv.memo_probes, sv.memo_hits, sv.memo_stale),
                "{name}: memo traffic diverged on {:?}",
                &input[..input.len().min(80)]
            );
            assert_eq!(
                (si.backtracks, si.terminal_comparisons),
                (sv.backtracks, sv.terminal_comparisons),
                "{name}: backtrack/comparison counts diverged on {:?}",
                &input[..input.len().min(80)]
            );
        }
    }
}

#[test]
fn memo_telemetry_agrees_with_interp() {
    const CAP: usize = 1 << 22;
    for (name, grammar) in bundled() {
        let interp = CompiledGrammar::compile(&grammar, OptConfig::all()).expect("compiles");
        let vm = VmProgram::from_compiled(&interp).expect("vm compiles");
        for input in inputs_for(name).into_iter().take(4) {
            let ti = Telemetry::collector(CAP).with_mask(mask::MEMO_HITS | mask::MEMO_TRAFFIC);
            let tv = Telemetry::collector(CAP).with_mask(mask::MEMO_HITS | mask::MEMO_TRAFFIC);
            let _ = interp.parse_with_telemetry(&input, &ti);
            let _ = vm.parse_with_telemetry(&input, &tv);
            let ri = MetricsRegistry::from_report(&ti.take_report());
            let rv = MetricsRegistry::from_report(&tv.take_report());
            let probes = |r: &MetricsRegistry| {
                let mut v: Vec<(String, u64, u64)> = r
                    .prods
                    .iter()
                    .filter(|p| p.memo_probes > 0)
                    .map(|p| (p.name.clone(), p.memo_probes, p.memo_hits))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(
                probes(&ri),
                probes(&rv),
                "{name}: per-production memo telemetry diverged"
            );
        }
    }
}

#[test]
fn governed_aborts_are_deterministic() {
    let grammar = modpeg_grammars::json_grammar().expect("compiles");
    let vm = VmProgram::full(&grammar).expect("vm compiles");
    let doc = modpeg_workload::json_document(3, 600);

    // Unlimited governor: same answer as ungoverned.
    let unlimited = Governor::new();
    let (r, stats) = vm.parse_governed(&doc, &unlimited);
    let tree = r.expect("unlimited governed parse succeeds");
    assert_eq!(tree.to_sexpr(), vm.parse(&doc).expect("plain").to_sexpr());
    let total = stats.gov_ticks;
    assert!(total > 0, "governed run counts ticks");

    // Cutting fuel mid-run aborts with FuelExhausted, deterministically.
    for fuel in [1, total / 2, total - 1] {
        let gov = Governor::new().with_fuel(fuel);
        let (r, _) = vm.parse_governed(&doc, &gov);
        match r {
            Err(ParseFault::Abort(ParseAbort::FuelExhausted)) => {}
            other => panic!("fuel {fuel}: expected FuelExhausted, got {other:?}"),
        }
        assert_eq!(gov.tripped(), Some(ParseAbort::FuelExhausted));
    }
    // Fuel >= total never aborts.
    let gov = Governor::new().with_fuel(total);
    let (r, _) = vm.parse_governed(&doc, &gov);
    assert!(r.is_ok(), "exact fuel budget suffices");

    // A pre-cancelled token aborts before any work.
    let token = CancelToken::new();
    token.cancel();
    let gov = Governor::new().with_cancel(token);
    let (r, _) = vm.parse_governed(&doc, &gov);
    assert!(matches!(r, Err(ParseFault::Abort(ParseAbort::Cancelled))));
    assert_eq!(gov.steps(), 0, "pre-cancelled run does no work");

    // A tiny depth ceiling aborts nested documents.
    let gov = Governor::new().with_max_depth(2);
    let (r, _) = vm.parse_governed(&doc, &gov);
    assert!(matches!(
        r,
        Err(ParseFault::Abort(ParseAbort::DepthExceeded))
    ));
}

#[test]
fn memo_budget_ladder_degrades_then_aborts() {
    let grammar = modpeg_grammars::json_grammar().expect("compiles");
    let vm = VmProgram::full(&grammar).expect("vm compiles");
    let doc = modpeg_workload::json_document(5, 800);
    let (_, baseline) = vm.parse_with_stats(&doc);
    let reference = vm.parse(&doc).expect("valid doc").to_sexpr();

    // A halved budget degrades (evicts or goes transient) but still
    // produces the identical tree.
    let gov = Governor::new().with_memo_budget((baseline.memo_bytes / 2).max(1));
    let (r, stats) = vm.parse_governed(&doc, &gov);
    let tree = r.expect("degraded parse still succeeds");
    assert_eq!(tree.to_sexpr(), reference);
    assert!(
        stats.gov_evictions > 0 || stats.gov_transient_fallbacks > 0,
        "budget pressure must be visible in stats"
    );
}

#[test]
fn unsupported_configs_are_rejected() {
    let grammar = modpeg_grammars::calc_grammar().expect("compiles");
    for n in 0..6 {
        let cfg = OptConfig::cumulative(n);
        match VmProgram::compile(&grammar, cfg) {
            Err(VmError::Unsupported(_)) => {}
            other => panic!(
                "cumulative({n}) lacks iterative strategies; expected Unsupported, got {:?}",
                other.map(|_| "program")
            ),
        }
    }
    assert!(VmProgram::compile(&grammar, OptConfig::cumulative(7)).is_ok());
}

#[test]
fn disassembly_is_deterministic() {
    let grammar = modpeg_grammars::calc_grammar().expect("compiles");
    let a = VmProgram::full(&grammar).expect("vm compiles").disassemble();
    let b = VmProgram::full(&grammar).expect("vm compiles").disassemble();
    assert_eq!(a, b);
    assert!(a.contains("memocall"), "calc memoizes productions:\n{a}");
    assert!(a.contains("classstar") || a.contains("classplus"), "superinstructions selected");
}
