//! Emits a deterministic Java workload program to stdout.
//!
//! Usage: cargo run --example emit_java -- [seed] [bytes]

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(0, |s| s.parse().expect("seed"));
    let bytes: usize = args.next().map_or(4096, |s| s.parse().expect("bytes"));
    print!("{}", modpeg_workload::java_program(seed, bytes));
}
