//! C-subset program generator.
//!
//! Exercises the typedef state machinery on purpose: the prelude declares
//! `typedef`s, later functions use the typedef'd names as types (including
//! the ambiguous `name * ptr;` form), and some functions open blocks with
//! local typedefs.

use std::fmt::Write as _;

use crate::rng::StdRng;
use crate::{ident, rng_for, IDENTS};

struct CGen {
    rng: StdRng,
    out: String,
    typedefs: Vec<String>,
    fn_idx: u32,
}

impl CGen {
    fn ty(&mut self) -> String {
        if !self.typedefs.is_empty() && self.rng.gen_ratio(2, 5) {
            self.typedefs[self.rng.gen_range(0..self.typedefs.len())].clone()
        } else {
            ["int", "char", "long", "unsigned int", "double"][self.rng.gen_range(0..5)]
                .to_owned()
        }
    }

    fn operand(&mut self, depth: u32) -> String {
        match self.rng.gen_range(0..10) {
            0..=3 => self.rng.gen_range(0u32..1000).to_string(),
            4..=6 => ident(&mut self.rng, IDENTS),
            7 if depth > 0 => format!("({})", self.expr(depth - 1)),
            8 if depth > 0 => {
                let f = ident(&mut self.rng, IDENTS);
                let a = self.operand(depth - 1);
                format!("{f}({a})")
            }
            9 => format!("*{}", ident(&mut self.rng, IDENTS)),
            _ => ident(&mut self.rng, IDENTS),
        }
    }

    fn expr(&mut self, depth: u32) -> String {
        let mut e = self.operand(depth);
        for _ in 0..self.rng.gen_range(0..3) {
            let op = [" + ", " - ", " * ", " / ", " % "][self.rng.gen_range(0..5)];
            let rhs = self.operand(depth);
            e.push_str(op);
            e.push_str(&rhs);
        }
        e
    }

    fn condition(&mut self) -> String {
        let lhs = self.operand(1);
        let cmp = [" < ", " > ", " == ", " != "][self.rng.gen_range(0..4)];
        let rhs = self.operand(1);
        format!("{lhs}{cmp}{rhs}")
    }

    fn statement(&mut self, indent: usize, depth: u32) {
        let pad = "    ".repeat(indent);
        match self.rng.gen_range(0..100) {
            0..=24 => {
                let v = ident(&mut self.rng, IDENTS);
                let e = self.expr(2);
                let _ = writeln!(self.out, "{pad}{v} = {e};");
            }
            25..=39 => {
                let t = self.ty();
                let v = ident(&mut self.rng, IDENTS);
                let e = self.expr(1);
                // The ambiguous form on purpose: `T * p = …;` is a pointer
                // declaration iff T is a typedef name.
                if self.rng.gen_ratio(1, 4) && self.typedefs.contains(&t) {
                    let _ = writeln!(self.out, "{pad}{t} * {v} = &{v};");
                } else {
                    let _ = writeln!(self.out, "{pad}{t} {v} = {e};");
                }
            }
            40..=52 if depth > 0 => {
                let c = self.condition();
                let _ = writeln!(self.out, "{pad}if ({c}) {{");
                self.block(indent + 1, depth - 1);
                if self.rng.gen_ratio(1, 2) {
                    let _ = writeln!(self.out, "{pad}}} else {{");
                    self.block(indent + 1, depth - 1);
                }
                let _ = writeln!(self.out, "{pad}}}");
            }
            53..=64 if depth > 0 => {
                let c = self.condition();
                let _ = writeln!(self.out, "{pad}while ({c}) {{");
                self.block(indent + 1, depth - 1);
                let _ = writeln!(self.out, "{pad}}}");
            }
            65..=74 if depth > 0 => {
                let v = ident(&mut self.rng, IDENTS);
                let n = self.rng.gen_range(1u32..50);
                let _ = writeln!(self.out, "{pad}for ({v} = 0; {v} < {n}; {v} = {v} + 1) {{");
                self.block(indent + 1, depth - 1);
                let _ = writeln!(self.out, "{pad}}}");
            }
            75..=79 if depth > 0 => {
                // Block with a local typedef (scoped state).
                let t = format!("local{}", self.rng.gen_range(0u32..100));
                let v = ident(&mut self.rng, IDENTS);
                let _ = writeln!(self.out, "{pad}{{");
                let ipad = "    ".repeat(indent + 1);
                let _ = writeln!(self.out, "{ipad}typedef int {t};");
                let _ = writeln!(self.out, "{ipad}{t} {v} = 0;");
                self.block(indent + 1, 0);
                let _ = writeln!(self.out, "{pad}}}");
            }
            _ => {
                let f = ident(&mut self.rng, IDENTS);
                let a = self.expr(1);
                let _ = writeln!(self.out, "{pad}{f}({a});");
            }
        }
    }

    fn block(&mut self, indent: usize, depth: u32) {
        for _ in 0..self.rng.gen_range(1..4) {
            self.statement(indent, depth);
        }
    }

    fn function(&mut self) {
        self.fn_idx += 1;
        let t = self.ty();
        let p1 = ident(&mut self.rng, IDENTS);
        let p2 = ident(&mut self.rng, IDENTS);
        let pt = self.ty();
        let _ = writeln!(
            self.out,
            "int fn{}({pt} {p1}, {t} *{p2}) {{",
            self.fn_idx
        );
        for _ in 0..self.rng.gen_range(2..6) {
            self.statement(1, 2);
        }
        let e = self.expr(1);
        let _ = writeln!(self.out, "    return {e};");
        let _ = writeln!(self.out, "}}");
        let _ = writeln!(self.out);
    }
}

/// Generates a well-formed program in the C subset, at least
/// `target_bytes` long, deterministically from `seed`. Roughly one in
/// three type positions uses a `typedef` name, keeping the state machinery
/// on the hot path as it is in real C.
pub fn c_program(seed: u64, target_bytes: usize) -> String {
    let mut g = CGen {
        rng: rng_for(seed, 3),
        out: String::with_capacity(target_bytes + 512),
        typedefs: Vec::new(),
        fn_idx: 0,
    };
    g.out.push_str("/* synthetic workload */\n");
    for i in 0..4 {
        let name = format!("t{i}");
        let base = ["int", "char", "long", "unsigned long"][i % 4];
        let _ = writeln!(g.out, "typedef {base} {name};");
        g.typedefs.push(name);
    }
    let _ = writeln!(g.out);
    while g.out.len() < target_bytes {
        g.function();
    }
    g.out
}
