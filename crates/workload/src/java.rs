//! Java-subset program generator.

use std::fmt::Write as _;

use crate::rng::StdRng;
use crate::{ident, rng_for, IDENTS};

struct JavaGen {
    rng: StdRng,
    out: String,
    /// Emit foreach/assert/try constructs (extended grammar only).
    extended: bool,
    class_idx: u32,
}

impl JavaGen {
    fn expr(&mut self, depth: u32) -> String {
        let mut e = self.operand(depth);
        for _ in 0..self.rng.gen_range(0..3) {
            let op = [" + ", " - ", " * ", " / ", " % "][self.rng.gen_range(0..5)];
            let rhs = self.operand(depth);
            e.push_str(op);
            e.push_str(&rhs);
        }
        if depth > 0 && self.rng.gen_ratio(1, 6) {
            let cmp = [" < ", " > ", " <= ", " >= ", " == ", " != "][self.rng.gen_range(0..6)];
            let rhs = self.operand(depth - 1);
            e.push_str(cmp);
            e.push_str(&rhs);
        }
        e
    }

    fn condition(&mut self, depth: u32) -> String {
        let lhs = self.operand(depth);
        let cmp = [" < ", " > ", " <= ", " >= ", " == ", " != "][self.rng.gen_range(0..6)];
        let rhs = self.operand(depth);
        let mut c = format!("{lhs}{cmp}{rhs}");
        if depth > 0 && self.rng.gen_ratio(1, 5) {
            let join = [" && ", " || "][self.rng.gen_range(0..2)];
            let more = self.condition(depth - 1);
            c = format!("{c}{join}{more}");
        }
        if depth > 0 && self.rng.gen_ratio(1, 8) {
            c = format!("!({c})");
        }
        c
    }

    fn operand(&mut self, depth: u32) -> String {
        match self.rng.gen_range(0..14) {
            0..=3 => self.rng.gen_range(0u32..1000).to_string(),
            4..=6 => ident(&mut self.rng, IDENTS),
            7 if depth > 0 => format!("({})", self.expr(depth - 1)),
            8 if depth > 0 => {
                let f = ident(&mut self.rng, IDENTS);
                let a = self.operand(depth - 1);
                let b = self.operand(depth - 1);
                format!("{f}({a}, {b})")
            }
            9 if depth > 0 => {
                let a = ident(&mut self.rng, IDENTS);
                let i = self.operand(depth - 1);
                format!("{a}[{i}]")
            }
            10 if depth > 0 => {
                // Method call / field access chains (Postfix.Call/Field).
                let recv = ident(&mut self.rng, IDENTS);
                let m = ident(&mut self.rng, IDENTS);
                if self.rng.gen_ratio(1, 2) {
                    let a = self.operand(depth - 1);
                    format!("{recv}.{m}({a}, 0)")
                } else {
                    format!("{recv}.{m}")
                }
            }
            11 if depth > 0 => format!("-{}", self.operand(depth - 1)),
            12 => format!("'{}'", (b'a' + self.rng.gen_range(0u8..26)) as char),
            _ => ident(&mut self.rng, IDENTS),
        }
    }

    fn statement(&mut self, indent: usize, depth: u32) {
        let pad = "    ".repeat(indent);
        let choice = self.rng.gen_range(0..100);
        match choice {
            0..=24 => {
                let v = ident(&mut self.rng, IDENTS);
                let e = self.expr(2);
                let _ = writeln!(self.out, "{pad}{v} = {e};");
            }
            25..=39 => {
                let v = ident(&mut self.rng, IDENTS);
                let e = self.expr(2);
                if self.rng.gen_ratio(1, 6) {
                    let src = ident(&mut self.rng, IDENTS);
                    let _ = writeln!(self.out, "{pad}int[] {v} = {src};");
                } else {
                    let _ = writeln!(self.out, "{pad}int {v} = {e};");
                }
            }
            40..=54 if depth > 0 => {
                let c = self.condition(1);
                let _ = writeln!(self.out, "{pad}if ({c}) {{");
                self.block(indent + 1, depth - 1);
                if self.rng.gen_ratio(1, 2) {
                    let _ = writeln!(self.out, "{pad}}} else {{");
                    self.block(indent + 1, depth - 1);
                }
                let _ = writeln!(self.out, "{pad}}}");
            }
            55..=64 if depth > 0 => {
                let c = self.condition(1);
                let _ = writeln!(self.out, "{pad}while ({c}) {{");
                self.block(indent + 1, depth - 1);
                let _ = writeln!(self.out, "{pad}}}");
            }
            65..=74 if depth > 0 => {
                let v = ident(&mut self.rng, IDENTS);
                let n = self.rng.gen_range(1u32..100);
                if self.extended && self.rng.gen_ratio(1, 3) {
                    let xs = ident(&mut self.rng, IDENTS);
                    let _ = writeln!(self.out, "{pad}for (int {v} : {xs}) {{");
                } else {
                    let _ = writeln!(
                        self.out,
                        "{pad}for (int {v} = 0; {v} < {n}; {v} = {v} + 1) {{"
                    );
                }
                self.block(indent + 1, depth - 1);
                let _ = writeln!(self.out, "{pad}}}");
            }
            75..=79 if depth > 0 => {
                let _ = writeln!(self.out, "{pad}do {{");
                self.block(indent + 1, depth - 1);
                let c = self.condition(0);
                let _ = writeln!(self.out, "{pad}}} while ({c});");
            }
            80..=84 if self.extended => {
                let c = self.condition(1);
                let m = self.rng.gen_range(0u32..100);
                let _ = writeln!(self.out, "{pad}assert {c} : {m};");
            }
            85..=89 if self.extended && depth > 0 => {
                let _ = writeln!(self.out, "{pad}try {{");
                self.block(indent + 1, depth - 1);
                let e = ident(&mut self.rng, IDENTS);
                let _ = writeln!(self.out, "{pad}}} catch (Error {e}) {{");
                self.block(indent + 1, 0);
                let _ = writeln!(self.out, "{pad}}}");
            }
            _ => {
                let f = ident(&mut self.rng, IDENTS);
                let a = self.expr(1);
                let _ = writeln!(self.out, "{pad}{f}({a}, \"msg\");");
            }
        }
    }

    fn block(&mut self, indent: usize, depth: u32) {
        for _ in 0..self.rng.gen_range(1..4) {
            self.statement(indent, depth);
        }
    }

    fn method(&mut self, indent: usize) {
        let pad = "    ".repeat(indent);
        let name = ident(&mut self.rng, IDENTS);
        let ret = ["int", "void", "boolean"][self.rng.gen_range(0..3)];
        let p1 = ident(&mut self.rng, IDENTS);
        let p2 = ident(&mut self.rng, IDENTS);
        let _ = writeln!(self.out, "{pad}{ret} {name}(int {p1}, int {p2}) {{");
        for _ in 0..self.rng.gen_range(2..6) {
            self.statement(indent + 1, 2);
        }
        if ret == "int" {
            let e = self.expr(1);
            let _ = writeln!(self.out, "{}return {e};", "    ".repeat(indent + 1));
        } else if ret == "boolean" {
            let _ = writeln!(self.out, "{}return true;", "    ".repeat(indent + 1));
        } else {
            let _ = writeln!(self.out, "{}return;", "    ".repeat(indent + 1));
        }
        let _ = writeln!(self.out, "{pad}}}");
    }

    fn class(&mut self) {
        self.class_idx += 1;
        let _ = writeln!(self.out, "class Gen{} {{", self.class_idx);
        for _ in 0..self.rng.gen_range(1..4) {
            let f = ident(&mut self.rng, IDENTS);
            if self.rng.gen_ratio(1, 2) {
                let v = self.rng.gen_range(0u32..100);
                let _ = writeln!(self.out, "    int {f} = {v};");
            } else {
                let _ = writeln!(self.out, "    int {f};");
            }
        }
        for _ in 0..self.rng.gen_range(1..4) {
            self.method(1);
        }
        let _ = writeln!(self.out, "}}");
        let _ = writeln!(self.out);
    }
}

fn generate(seed: u64, target_bytes: usize, extended: bool) -> String {
    let mut g = JavaGen {
        rng: rng_for(seed, if extended { 2 } else { 1 }),
        out: String::with_capacity(target_bytes + 512),
        extended,
        class_idx: 0,
    };
    g.out.push_str("// synthetic workload\n");
    while g.out.len() < target_bytes {
        g.class();
    }
    g.out
}

/// Generates a well-formed program in the base Java subset, at least
/// `target_bytes` long, deterministically from `seed`.
pub fn java_program(seed: u64, target_bytes: usize) -> String {
    generate(seed, target_bytes, false)
}

/// Like [`java_program`], additionally using the foreach/assert/try
/// constructs of the extended grammar.
pub fn java_extended_program(seed: u64, target_bytes: usize) -> String {
    generate(seed, target_bytes, true)
}
