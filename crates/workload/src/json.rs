//! JSON document generator.

use std::fmt::Write as _;

use crate::rng::StdRng;
use crate::rng_for;

const WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "name", "kind", "tags", "items",
    "config", "meta", "level", "score",
];

fn value(rng: &mut StdRng, out: &mut String, depth: u32) {
    match rng.gen_range(0..10) {
        0..=2 if depth > 0 => object(rng, out, depth - 1),
        3..=4 if depth > 0 => array(rng, out, depth - 1),
        5..=6 => {
            let _ = write!(out, "\"{}\"", WORDS[rng.gen_range(0..WORDS.len())]);
        }
        7 => {
            let _ = write!(
                out,
                "{}{}.{}e{}",
                if rng.gen_ratio(1, 4) { "-" } else { "" },
                rng.gen_range(0u32..1000),
                rng.gen_range(0u32..100),
                rng.gen_range(0i32..5)
            );
        }
        8 => out.push_str(if rng.gen_ratio(1, 2) { "true" } else { "false" }),
        _ => {
            if rng.gen_ratio(1, 5) {
                out.push_str("null");
            } else {
                let _ = write!(out, "{}", rng.gen_range(0u32..100000));
            }
        }
    }
}

fn object(rng: &mut StdRng, out: &mut String, depth: u32) {
    out.push('{');
    let n = rng.gen_range(1..6);
    for i in 0..n {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}{}\": ",
            WORDS[rng.gen_range(0..WORDS.len())],
            rng.gen_range(0u32..100)
        );
        value(rng, out, depth);
    }
    out.push('}');
}

fn array(rng: &mut StdRng, out: &mut String, depth: u32) {
    out.push('[');
    let n = rng.gen_range(1..6);
    for i in 0..n {
        if i > 0 {
            out.push_str(", ");
        }
        value(rng, out, depth);
    }
    out.push(']');
}

/// Generates a JSON document (an array of objects), at least
/// `target_bytes` long, deterministically from `seed`.
pub fn json_document(seed: u64, target_bytes: usize) -> String {
    let mut rng = rng_for(seed, 4);
    let mut out = String::with_capacity(target_bytes + 256);
    out.push('[');
    let mut first = true;
    while out.len() < target_bytes {
        if !first {
            out.push_str(",\n ");
        }
        first = false;
        object(&mut rng, &mut out, 3);
    }
    out.push(']');
    out
}
