//! # modpeg-workload
//!
//! Seeded synthetic source generators for the benchmark harness.
//!
//! The paper evaluates its parsers on corpora of real C and Java files; in
//! this reproduction the corpora are synthesized (documented substitution
//! in `DESIGN.md`): generators emit well-formed programs in exactly the
//! constructs the `modpeg-grammars` subsets support, with a realistic mix
//! of declarations, control flow, and expression shapes, controllable by
//! `seed` and a target size. Identical seeds yield identical programs, so
//! every experiment is reproducible.

#![warn(missing_docs)]

mod c;
mod java;
mod json;
pub mod rng;

pub use c::c_program;
pub use java::{java_extended_program, java_program};
pub use json::json_document;

use rng::StdRng;

/// A deterministic arithmetic expression for the calculator grammar,
/// roughly `target_bytes` long.
pub fn calc_expression(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA1C);
    let mut out = String::with_capacity(target_bytes + 16);
    fn atom(rng: &mut StdRng, out: &mut String, depth: u32) {
        if depth > 0 && rng.gen_ratio(1, 4) {
            out.push('(');
            expr(rng, out, depth - 1);
            out.push(')');
        } else {
            out.push_str(&rng.gen_range(0u32..1000).to_string());
        }
    }
    fn expr(rng: &mut StdRng, out: &mut String, depth: u32) {
        atom(rng, out, depth);
        for _ in 0..rng.gen_range(1..4) {
            out.push_str([" + ", " - ", " * ", " / "][rng.gen_range(0..4)]);
            atom(rng, out, depth);
        }
    }
    while out.len() < target_bytes {
        if !out.is_empty() {
            out.push_str(" + ");
        }
        expr(&mut rng, &mut out, 3);
    }
    out
}

/// The exponential-backtracking stress input: `a…a` (`n` copies) against
/// the grammar `S ← "a" S "b" / "a" S "c" / "a"`. Both recursive
/// alternatives re-parse the same suffix, so a parser without memoization
/// does `Θ(2ⁿ)` work before rejecting, while a packrat parser rejects in
/// linear time. Pair with [`PATHOLOGICAL_GRAMMAR`].
pub fn pathological_input(n: usize) -> String {
    "a".repeat(n)
}

/// Grammar-module source for the backtracking stress test (see
/// [`pathological_input`]).
pub const PATHOLOGICAL_GRAMMAR: &str = "\
module pathological;
void S = \"a\" S \"b\" / \"a\" S \"c\" / \"a\" ;
public void P = S !. ;
";

/// Identifier pool shared by the program generators.
pub(crate) fn ident(rng: &mut StdRng, pool: &[&str]) -> String {
    let base = pool[rng.gen_range(0..pool.len())];
    if rng.gen_ratio(1, 3) {
        format!("{base}{}", rng.gen_range(0u32..100))
    } else {
        base.to_owned()
    }
}

pub(crate) const IDENTS: &[&str] = &[
    "value", "count", "index", "total", "size", "item", "result", "buffer", "offset", "limit",
    "state", "flag", "node", "left", "right", "sum", "tmp", "data", "acc", "pos",
];

pub(crate) fn rng_for(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calc_expression_is_deterministic_and_sized() {
        let a = calc_expression(7, 500);
        let b = calc_expression(7, 500);
        assert_eq!(a, b);
        assert!(a.len() >= 500);
        assert!(a.len() < 1000);
        let c = calc_expression(8, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn java_program_deterministic_and_scales() {
        let small = java_program(1, 1_000);
        let big = java_program(1, 10_000);
        assert_eq!(small, java_program(1, 1_000));
        assert!(small.len() >= 1_000);
        assert!(big.len() > small.len());
        assert!(small.contains("class "));
        assert!(small.contains("return"));
    }

    #[test]
    fn extended_program_contains_new_constructs() {
        let p = java_extended_program(3, 4_000);
        assert!(p.contains("assert "), "{p}");
        assert!(p.contains(" : "), "{p}");
        assert!(p.contains("try {"), "{p}");
        assert!(p.contains("for ("), "{p}");
    }

    #[test]
    fn c_program_contains_typedef_uses() {
        let p = c_program(5, 4_000);
        assert!(p.contains("typedef "), "{p}");
        assert!(p.contains("while"), "{p}");
        // A typedef'd name is used as a type somewhere.
        assert!(p.contains("t0 "), "{p}");
    }

    #[test]
    fn json_document_sized() {
        let d = json_document(2, 2_000);
        assert_eq!(d, json_document(2, 2_000));
        assert!(d.len() >= 2_000);
        assert!(d.starts_with('{') || d.starts_with('['));
    }

    #[test]
    fn pathological_input_shape() {
        assert_eq!(pathological_input(4), "aaaa");
        assert!(PATHOLOGICAL_GRAMMAR.contains("module pathological"));
    }
}
