//! A small, self-contained deterministic PRNG.
//!
//! The workload generators only need reproducible streams with uniform
//! integer sampling, so instead of depending on the `rand` crate (which
//! the build environment cannot always fetch) we vendor a SplitMix64
//! generator behind the same method names the generators were written
//! against (`seed_from_u64`, `gen_range`, `gen_ratio`).
//!
//! SplitMix64 passes BigCrush, is seedable from a single `u64`, and its
//! output is fully determined by the seed — which is the only property the
//! experiments rely on (identical seeds ⇒ identical corpora).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator; drop-in for the subset of `rand::rngs::StdRng`
/// the workload generators use. Note the streams differ from `rand`'s —
/// corpora generated before the switch are not byte-identical, only
/// statistically equivalent.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seeds the generator from a single word.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from an integer range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds(); // half-open [lo, hi)
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u128;
        // Modulo bias is negligible for the tiny spans the generators use
        // (and irrelevant to their purpose).
        let offset = (self.next_u64() as u128 % span) as i128;
        T::from_i128(lo + offset)
    }

    /// Returns `true` with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0, "gen_ratio needs a positive denominator");
        self.next_u64() % u64::from(den) < u64::from(num)
    }

    /// Fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Range shapes [`StdRng::gen_range`] accepts, normalized to half-open
/// `[lo, hi)` bounds in the `i128` widening domain.
pub trait SampleRange<T: UniformInt> {
    /// Returns the `(lo, hi)` half-open bounds.
    fn bounds(self) -> (i128, i128);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn bounds(self) -> (i128, i128) {
        (self.start.to_i128(), self.end.to_i128())
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (i128, i128) {
        let (start, end) = self.into_inner();
        (start.to_i128(), end.to_i128() + 1)
    }
}

/// Integer types [`StdRng::gen_range`] can sample.
pub trait UniformInt: Copy {
    /// Widens to a common signed type.
    fn to_i128(self) -> i128;
    /// Narrows back; the value is guaranteed in range by construction.
    fn from_i128(v: i128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn ratio_is_plausible() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| r.gen_ratio(1, 1)));
        let mut r2 = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r2.gen_ratio(0, 3)));
    }
}
