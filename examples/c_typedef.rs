//! Context-sensitive parsing with parser state: C's `typedef` ambiguity.
//!
//! `x * y;` is a multiplication — unless `x` was `typedef`ed, in which
//! case it declares `y` as a pointer. The C-subset grammar resolves this
//! the way the Rats! C grammar does: `typedef` declarations `%define` the
//! name in scoped parser state and `TypedefName` only matches `%isdef`ed
//! identifiers. This example parses the same statement text in both
//! contexts and prints the two different trees.
//!
//! ```sh
//! cargo run --example c_typedef
//! ```

fn show(label: &str, src: &str) {
    println!("--- {label} ---");
    println!("{src}");
    match modpeg::grammars::generated::c::parse(src) {
        Ok(tree) => {
            let s = tree.to_sexpr();
            let verdict = if s.contains("Declaration.Vars") && s.contains("Declarator.Ptr") {
                "`value * result;` parsed as a POINTER DECLARATION"
            } else if s.contains("MulExpr.Mul") {
                "`value * result;` parsed as a MULTIPLICATION"
            } else {
                "see tree"
            };
            println!("=> {verdict}\n");
        }
        Err(e) => println!("=> parse error: {e}\n"),
    }
}

fn main() {
    show(
        "without typedef",
        "int main() {\n    int value = 2;\n    int result = 3;\n    value * result;\n    return 0;\n}\n",
    );
    show(
        "with typedef",
        "typedef int value;\nint main() {\n    value * result;\n    return 0;\n}\n",
    );
    show(
        "local typedef does not leak",
        "int main() {\n    { typedef int local_t; local_t x = 1; }\n    local_t y = 2;\n    return 0;\n}\n",
    );
}
