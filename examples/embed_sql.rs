//! Multiple languages in one file: SQL SELECT queries as Java expressions.
//!
//! The host (Java subset) and guest (SQL) grammars are independent module
//! sets; the composition is one ~10-line modification module that splices
//! `sql.Select` into `java.Expr.Primary` between `#[ … ]#` delimiters.
//! Because PEGs are scannerless, no lexer coordination is needed — inside
//! the brackets SQL's own lexical syntax applies.
//!
//! ```sh
//! cargo run --example embed_sql
//! ```

use modpeg::runtime::Value;

const PROGRAM: &str = r#"
class ReportJob {
    int threshold;

    int run(int db) {
        int adults = #[ select name, age from users
                        where age >= 18 and not city = 'unknown'
                        order by age desc ]# ;
        int totals = #[ select * from stats ]# ;
        return adults + totals;
    }
}
"#;

/// Collects the SQL subtrees out of the host syntax tree.
fn find_queries<'v>(value: &'v Value, out: &mut Vec<&'v Value>) {
    match value {
        Value::Node(node) => {
            if node.kind().as_str() == "Primary.Sql" {
                out.push(node.child(0).expect("sql node wraps a select"));
                return;
            }
            for c in node.children() {
                find_queries(c, out);
            }
        }
        Value::List(items) => {
            for v in items.iter() {
                find_queries(v, out);
            }
        }
        _ => {}
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- mixed-language source ---{PROGRAM}-----------------------------\n");

    match modpeg::grammars::generated::java::parse(PROGRAM) {
        Err(e) => println!("plain Java grammar : {e}"),
        Ok(_) => println!("plain Java grammar : accepted (unexpected!)"),
    }

    let tree = modpeg::grammars::generated::java_sql::parse(PROGRAM)?;
    println!("Java+SQL grammar   : parsed OK\n");

    let mut queries = Vec::new();
    find_queries(tree.root(), &mut queries);
    println!("embedded SQL queries found: {}", queries.len());
    for (i, q) in queries.iter().enumerate() {
        println!("  #{}: {}", i + 1, q.to_sexpr(tree.input()));
    }

    println!(
        "\nThe embedding module (grammars/java_sql.mpeg) is {} non-comment lines.",
        modpeg::grammars::module_stats(modpeg::grammars::sources::JAVA_SQL)?
            .iter()
            .map(|m| m.lines)
            .sum::<usize>()
    );
    Ok(())
}
