//! The paper's headline demo: growing a language by *importing a module*.
//!
//! The base Java-subset grammar knows nothing about `foreach`, `assert`,
//! or `try/catch`. Each extension is a self-contained modification module;
//! composing them with the base requires **zero edits** to the base
//! grammar. This example parses the same program with both grammars and
//! shows the base one rejecting exactly where the new syntax starts.
//!
//! ```sh
//! cargo run --example extend_java
//! ```

const PROGRAM: &str = r#"
class Inventory {
    int total;

    void restock(int[] counts) {
        assert size(counts) > 0 : 1;
        for (int c : counts) {
            try {
                total = total + c;
            } catch (Overflow e) {
                report(e, 0);
            }
        }
    }

    int size(int[] xs) { return 3; }
    void report(Overflow e, int code) { return; }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- program ---{PROGRAM}---------------\n");

    // Base grammar: rejects at the `assert`.
    match modpeg::grammars::generated::java::parse(PROGRAM) {
        Ok(_) => println!("base grammar: accepted (unexpected!)"),
        Err(e) => println!("base grammar   : {e}"),
    }

    // Extended grammar: base modules + foreach/assert/try modules.
    let tree = modpeg::grammars::generated::java_extended::parse(PROGRAM)?;
    let sexpr = tree.to_sexpr();
    println!("extended grammar: parsed OK");
    for kind in ["Statement.Assert", "Statement.Foreach", "Statement.Try"] {
        println!(
            "  contains {kind:<18} {}",
            if sexpr.contains(kind) { "yes" } else { "no" }
        );
    }

    // The extensions are modules — show how small they are.
    println!("\nextension modules:");
    for m in modpeg::grammars::module_stats(modpeg::grammars::sources::JAVA_EXT)? {
        if m.is_modification {
            println!("  {:<22} {:>2} clauses, {:>2} lines", m.name, m.productions, m.lines);
        }
    }
    println!("\nlines changed in the base grammar: 0");
    Ok(())
}
