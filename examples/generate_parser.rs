//! The generator workflow: turn grammar modules into a standalone Rust
//! parser module, exactly what `modpeg-grammars`' build script does for
//! the shipped grammars (and what `modpeg gen` does on the command line).
//!
//! ```sh
//! cargo run --example generate_parser            # print a summary
//! cargo run --example generate_parser -- out.rs  # write the full source
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = modpeg::syntax::parse_module_set([modpeg::grammars::sources::JSON])?;
    let grammar = set.elaborate("json", Some("Document"))?;
    println!(
        "elaborated `json`: {} productions, root `{}`",
        grammar.len(),
        grammar.production(grammar.root()).name
    );

    let source = modpeg::codegen::generate(&grammar, "JSON parser (example output)")?;
    let lines = source.lines().count();
    let fns = source.matches("fn ").count();
    println!("generated parser : {} lines, {} functions", lines, fns);

    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &source)?;
            println!("wrote {path}");
            println!(
                "\nTo use it: include the file in a crate that depends on\n\
                 modpeg-runtime and call `parse(text)` — see modpeg-grammars'\n\
                 build.rs for the build-time version of this workflow."
            );
        }
        None => {
            println!("\n--- first 40 lines ---");
            for line in source.lines().take(40) {
                println!("{line}");
            }
            println!("... (pass a filename to write the whole parser)");
        }
    }
    Ok(())
}
