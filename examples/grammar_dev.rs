//! The grammar-developer workflow: lint → coverage → trace.
//!
//! A tour of the tooling a grammar author uses while evolving a language:
//! composition lints catch dead/shadowed alternatives introduced by a
//! modification, coverage shows which alternatives a test corpus actually
//! exercises, and tracing explains a single confusing parse.
//!
//! ```sh
//! cargo run --example grammar_dev
//! ```

use modpeg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately flawed extension: the new alternative duplicates an
    // existing one, and a keyword is inserted before its own prefix.
    let flawed = modpeg::compile(
        [
            modpeg::grammars::sources::JAVA,
            "module sloppy;\n\
             modify java.Stmt;\n\
             import java.Lexical;\n\
             Statement += <Empty2> SEMI ;",
            "module dev; import java.Program; import sloppy; public Start = Program ;",
        ],
        "dev",
        Some("Start"),
    )?;
    println!("== lint (flawed extension) ==");
    for w in modpeg::core::analysis::lint(flawed.grammar()) {
        if !w.message().contains("unreachable from the root") {
            println!("  {w}");
        }
    }

    // Coverage: run the test corpus over the base grammar and list holes.
    println!("\n== coverage of a 3-program corpus ==");
    let g = modpeg::grammars::java_grammar()?;
    let parser = CompiledGrammar::compile(&g, OptConfig::all())?;
    let mut total: Option<modpeg::interp::Coverage> = None;
    for seed in 0..3u64 {
        let program = modpeg_workload::java_program(seed, 6_000);
        let (r, cov) = parser.parse_with_coverage(&program);
        r.expect("workload parses");
        match &mut total {
            None => total = Some(cov),
            Some(t) => t.absorb(&cov),
        }
    }
    let total = total.expect("three runs");
    println!(
        "  {}/{} alternatives exercised ({:.0}%)",
        total.covered_count(),
        total.alternative_count(),
        total.ratio() * 100.0
    );
    for (prod, alt) in total.uncovered().into_iter().take(6) {
        println!("  never matched: {prod} {alt}");
    }
    println!("  …");

    // Trace: why does `x = = 1;` fail?
    println!("\n== trace of a failing parse (first 25 events) ==");
    let stmt = parser.with_root("Statement")?;
    let (result, trace) = stmt.parse_with_trace("x = = 1;", 10_000);
    for event in trace.events().iter().take(25) {
        let indent = "  ".repeat(event.depth as usize + 1);
        println!("{indent}{} @{} {:?}", trace.name_of(event), event.pos, event.outcome);
    }
    if let Err(e) = result {
        println!("  => {e}");
    }
    Ok(())
}
