//! A small real tool on top of the generated JSON parser: a pretty-printer.
//!
//! Reads JSON from a file argument (or uses a built-in document), parses it
//! with the generated packrat parser, and re-emits it indented — a
//! demonstration of consuming generic syntax trees from application code.
//!
//! ```sh
//! cargo run --example json_pretty -- file.json
//! ```

use modpeg::runtime::Value;

fn pretty(value: &Value, input: &str, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Value::Node(node) => match node.kind().as_str() {
            "Document.Doc" => pretty(node.child(0).expect("doc has a value"), input, indent, out),
            "Object.Object" => {
                let members = node.child(0);
                match members {
                    Some(Value::List(items)) if !items.is_empty() => {
                        out.push_str("{\n");
                        for (i, m) in items.iter().enumerate() {
                            if i > 0 {
                                out.push_str(",\n");
                            }
                            out.push_str(&"  ".repeat(indent + 1));
                            pretty(m, input, indent + 1, out);
                        }
                        out.push('\n');
                        out.push_str(&pad);
                        out.push('}');
                    }
                    _ => out.push_str("{}"),
                }
            }
            "Member.Member" => {
                let key = node.child(0).and_then(|k| k.as_text(input)).unwrap_or("?");
                out.push_str(key);
                out.push_str(": ");
                pretty(node.child(1).expect("member has a value"), input, indent, out);
            }
            "Array.Array" => match node.child(0) {
                Some(Value::List(items)) if !items.is_empty() => {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        pretty(v, input, indent, out);
                    }
                    out.push(']');
                }
                _ => out.push_str("[]"),
            },
            "True" => out.push_str("true"),
            "False" => out.push_str("false"),
            "Null" => out.push_str("null"),
            other => out.push_str(other),
        },
        Value::List(items) => {
            for v in items.iter() {
                pretty(v, input, indent, out);
            }
        }
        v => out.push_str(v.as_text(input).unwrap_or("?")),
    }
}

const SAMPLE: &str = r#"{"name":"modpeg","versions":[1,2,3],"meta":{"packrat":true,"paper":"PLDI 2006","speedup":7.2e0},"todo":null}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_owned(),
    };
    let (result, stats) = modpeg::grammars::generated::json::parse_with_stats(&text);
    let tree = result?;
    let mut out = String::new();
    pretty(tree.root(), tree.input(), 0, &mut out);
    println!("{out}");
    eprintln!(
        "\n[{} bytes, {} nodes built, {} memo probes, {:.1}% hit rate]",
        text.len(),
        stats.nodes_built,
        stats.memo_probes,
        stats.memo_hit_rate() * 100.0
    );
    Ok(())
}
