//! Quickstart: compile a grammar, parse input, walk the syntax tree.
//!
//! ```sh
//! cargo run --example quickstart -- "1 + 2 * (3 - 4)"
//! ```

use modpeg::prelude::*;
use modpeg::runtime::Node;

/// Evaluates the calculator's syntax tree.
fn eval(value: &Value, input: &str) -> f64 {
    match value {
        Value::Node(node) => eval_node(node, input),
        v => v
            .as_text(input)
            .and_then(|t| t.parse().ok())
            .unwrap_or(f64::NAN),
    }
}

fn eval_node(node: &Node, input: &str) -> f64 {
    let kid = |i: usize| eval(node.child(i).expect("calc nodes are well-formed"), input);
    match node.kind().as_str() {
        "Program.P" => kid(0),
        "Expr.Add" => kid(0) + kid(1),
        "Expr.Sub" => kid(0) - kid(1),
        "Term.Mul" => kid(0) * kid(1),
        "Term.Div" => kid(0) / kid(1),
        "Atom.Paren" => kid(0),
        "Atom.Neg" => -kid(0),
        other => panic!("unexpected node kind {other}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "1 + 2 * (3 - 4) / 2".to_owned());

    // The calculator grammar ships with the library; compiling it applies
    // the full optimization battery and yields a packrat parser.
    let parser = modpeg::compile([modpeg::grammars::sources::CALC], "calc", Some("Program"))?;

    match parser.parse(&input) {
        Ok(tree) => {
            println!("input : {input}");
            println!("tree  : {}", tree.to_sexpr());
            println!("value : {}", eval(tree.root(), tree.input()));
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    Ok(())
}
