#!/usr/bin/env sh
# Arena / zero-copy smoke run (~5 s budget).
#
# Three checks:
#   1. `modpeg parse --events` — the SAX event mode runs on both CLI
#      engines and reports identical event counts (the stream is the
#      same tree, so the counts must match exactly);
#   2. double-parse determinism — parsing the same document twice emits
#      byte-identical trees (a dirty recycled region would show up as a
#      diverging second parse);
#   3. `fig_arena --smoke` — parse/recycle cycles through a SessionPool
#      hold live heap flat once capacities warm up (allocation counters
#      catch regions leaked by reset/recycle).
#
# Usage: scripts/arena-smoke.sh
set -eu

cd "$(dirname "$0")/.."

MODPEG=target/release/modpeg
FIG_ARENA=target/release/fig_arena
if [ ! -x "$MODPEG" ]; then
    echo "== arena-smoke: building modpeg =="
    cargo build --release -p modpeg-cli
fi
if [ ! -x "$FIG_ARENA" ]; then
    echo "== arena-smoke: building fig_arena =="
    cargo build --release -p modpeg-bench --bin fig_arena
fi

TMPDIR="${TMPDIR:-/tmp}"
IN="$TMPDIR/modpeg-arena-smoke-in.$$"
A="$TMPDIR/modpeg-arena-smoke-a.$$"
B="$TMPDIR/modpeg-arena-smoke-b.$$"
trap 'rm -f "$IN" "$A" "$B" "$A.events" "$B.events"' EXIT

printf '(1+2)*(3+4)-(5+6)*(7+8)' >"$IN"

echo "== arena-smoke: modpeg parse --events (interp vs vm) =="
# The second output line names the engine, so compare the event-count
# lines only.
"$MODPEG" parse crates/grammars/grammars/calc.mpeg --input "$IN" --events >"$A"
"$MODPEG" parse crates/grammars/grammars/calc.mpeg --input "$IN" --events --engine vm >"$B"
grep '^events:' "$A" >"$A.events"
grep '^events:' "$B" >"$B.events"
cmp "$A.events" "$B.events" || { echo "arena-smoke: interp and vm event streams disagree"; exit 1; }
grep -q 'node(s)' "$A.events" || { echo "arena-smoke: event summary missing"; exit 1; }

echo "== arena-smoke: double-parse determinism =="
"$MODPEG" parse crates/grammars/grammars/calc.mpeg --input "$IN" >"$A"
"$MODPEG" parse crates/grammars/grammars/calc.mpeg --input "$IN" >"$B"
cmp "$A" "$B" || { echo "arena-smoke: repeated parses emit different trees"; exit 1; }

echo "== arena-smoke: recycle-leak check =="
"$FIG_ARENA" --smoke

echo "== arena-smoke: OK =="
