#!/usr/bin/env sh
# Deterministic fault-injection smoke campaign (~5 s budget).
#
# Runs `modpeg fault --smoke`: fixed seeds, all four grammars, every
# engine. Each document is aborted at randomized-but-deterministic fuel
# points (plus memo-budget squeezes, depth ceilings, and pre-cancelled
# tokens) and the abort contract is checked: no memo corruption, retries
# reproduce the ungoverned tree, sessions stay usable, edits after aborts
# stay sound. Any violation fails the run.
#
# Usage: scripts/fault-smoke.sh
set -eu

cd "$(dirname "$0")/.."

MODPEG=target/release/modpeg
if [ ! -x "$MODPEG" ]; then
    echo "== fault-smoke: building modpeg =="
    cargo build --release -p modpeg-cli
fi

echo "== fault-smoke: modpeg fault --smoke =="
"$MODPEG" fault --smoke

echo "== fault-smoke: OK =="
