#!/usr/bin/env sh
# Deterministic conformance-fuzzing smoke run (~5 s budget).
#
# Runs `modpeg fuzz --smoke`: fixed seeds, all four grammars, every
# engine (interpreter opt ladder, baseline recognizer, generated parsers,
# incremental edit replay, SAX event round-trips). Any cross-engine
# divergence fails the run and prints a minimized, paste-ready
# regression test. The event-oracle leg must actually have run: the
# report line is checked for a nonzero round-trip count.
#
# Usage: scripts/fuzz-smoke.sh
set -eu

cd "$(dirname "$0")/.."

MODPEG=target/release/modpeg
if [ ! -x "$MODPEG" ]; then
    echo "== fuzz-smoke: building modpeg =="
    cargo build --release -p modpeg-cli
fi

echo "== fuzz-smoke: modpeg fuzz --smoke =="
OUT=$("$MODPEG" fuzz --smoke)
printf '%s\n' "$OUT"
printf '%s\n' "$OUT" | grep -q '[1-9][0-9]* event round-trips' || {
    echo "fuzz-smoke: the event-oracle leg did not run"
    exit 1
}

echo "== fuzz-smoke: OK =="
