#!/usr/bin/env sh
# Deterministic conformance-fuzzing smoke run (~5 s budget).
#
# Runs `modpeg fuzz --smoke`: fixed seeds, all four grammars, every
# engine (interpreter opt ladder, baseline recognizer, generated parsers,
# incremental edit replay). Any cross-engine divergence fails the run and
# prints a minimized, paste-ready regression test.
#
# Usage: scripts/fuzz-smoke.sh
set -eu

cd "$(dirname "$0")/.."

MODPEG=target/release/modpeg
if [ ! -x "$MODPEG" ]; then
    echo "== fuzz-smoke: building modpeg =="
    cargo build --release -p modpeg-cli
fi

echo "== fuzz-smoke: modpeg fuzz --smoke =="
"$MODPEG" fuzz --smoke

echo "== fuzz-smoke: OK =="
