#!/usr/bin/env sh
# Telemetry/profiling smoke run (~5 s budget).
#
# Profiles the committed Java sample (tests/data/profile.java) with
# `modpeg profile` in every exposition format and checks each output is
# produced and non-empty. The Chrome-trace and JSON-metrics outputs are
# additionally validated by parsing them with the repo's own JSON grammar
# — the profiler's output must satisfy the parser it profiles. Finally,
# `parse --telemetry` is exercised to confirm the metrics summary reaches
# stderr on an ordinary governed parse.
#
# Usage: scripts/profile-smoke.sh
set -eu

cd "$(dirname "$0")/.."

MODPEG=target/release/modpeg
if [ ! -x "$MODPEG" ]; then
    echo "== profile-smoke: building modpeg =="
    cargo build --release -p modpeg-cli
fi

JAVA_ARGS="crates/grammars/grammars/java.mpeg --root java.Program --start Program"
INPUT=tests/data/profile.java
OUT_DIR="${TMPDIR:-/tmp}/modpeg-profile-smoke"
mkdir -p "$OUT_DIR"

for fmt in summary chrome folded prom heatmap heatmap-csv json; do
    out="$OUT_DIR/profile.$fmt"
    echo "== profile-smoke: modpeg profile --format $fmt =="
    # shellcheck disable=SC2086 # JAVA_ARGS is a deliberate word list
    "$MODPEG" profile $JAVA_ARGS --input "$INPUT" --format "$fmt" --out "$out"
    [ -s "$out" ] || { echo "profile-smoke: empty $fmt output" >&2; exit 1; }
done

echo "== profile-smoke: chrome + json outputs parse with the repo JSON grammar =="
for fmt in chrome json; do
    "$MODPEG" parse crates/grammars/grammars/json.mpeg --root json --start Document \
        --input "$OUT_DIR/profile.$fmt" > /dev/null
done

echo "== profile-smoke: sampled profile =="
# shellcheck disable=SC2086
"$MODPEG" profile $JAVA_ARGS --input "$INPUT" --format chrome --sample 16 \
    --out "$OUT_DIR/profile.sampled"
[ -s "$OUT_DIR/profile.sampled" ] || { echo "profile-smoke: empty sampled output" >&2; exit 1; }

echo "== profile-smoke: parse --telemetry reports metrics =="
# shellcheck disable=SC2086
"$MODPEG" parse $JAVA_ARGS --input "$INPUT" --telemetry --fuel 50000000 \
    > /dev/null 2> "$OUT_DIR/telemetry.stderr"
grep -q "production" "$OUT_DIR/telemetry.stderr" || {
    echo "profile-smoke: no metrics summary on stderr" >&2
    exit 1
}

echo "== profile-smoke: OK =="
