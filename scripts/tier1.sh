#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md): release build + full test suite.
# Fully offline — the workspace has no external dependencies, so this
# works without network access or a pre-populated cargo registry.
#
# Usage: scripts/tier1.sh
set -eu

cd "$(dirname "$0")/.."

# --workspace everywhere: the root manifest is itself a package, so bare
# `cargo build`/`cargo test` here would cover only the root crate and
# leave e.g. the release CLI binary stale for the smoke runs below.
echo "== tier-1: cargo build --release --workspace =="
cargo build --release --workspace

echo "== tier-1: cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo test -q --workspace =="
cargo test -q --workspace

echo "== tier-1: conformance fuzz smoke =="
sh scripts/fuzz-smoke.sh

echo "== tier-1: fault-injection smoke =="
sh scripts/fault-smoke.sh

echo "== tier-1: bytecode-machine smoke =="
sh scripts/vm-smoke.sh

echo "== tier-1: telemetry/profiling smoke =="
sh scripts/profile-smoke.sh

echo "== tier-1: arena/zero-copy smoke =="
sh scripts/arena-smoke.sh

echo "== tier-1: OK =="
