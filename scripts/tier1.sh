#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md): release build + full test suite.
# Fully offline — the workspace has no external dependencies, so this
# works without network access or a pre-populated cargo registry.
#
# Usage: scripts/tier1.sh
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: conformance fuzz smoke =="
sh scripts/fuzz-smoke.sh

echo "== tier-1: OK =="
