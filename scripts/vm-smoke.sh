#!/usr/bin/env sh
# Bytecode-machine smoke run (~5 s budget).
#
# Three checks:
#   1. `modpeg fuzz --engines vm --smoke` — the VM agrees with the
#      reference interpreter on every smoke input of all four grammars;
#   2. `modpeg fault --engines vm --smoke` — governed VM runs uphold the
#      abort contract (fuel, depth, memo budget, cancellation);
#   3. `modpeg compile --dump-bytecode` round-trip — two independent
#      compiles of the calc grammar disassemble byte-identically, and the
#      listing matches the committed golden file.
#
# Usage: scripts/vm-smoke.sh
set -eu

cd "$(dirname "$0")/.."

MODPEG=target/release/modpeg
if [ ! -x "$MODPEG" ]; then
    echo "== vm-smoke: building modpeg =="
    cargo build --release -p modpeg-cli
fi

echo "== vm-smoke: modpeg fuzz --engines vm --smoke =="
"$MODPEG" fuzz --engines vm --smoke

echo "== vm-smoke: modpeg fault --engines vm --smoke =="
"$MODPEG" fault --engines vm --smoke

echo "== vm-smoke: bytecode dump round-trip =="
TMPDIR="${TMPDIR:-/tmp}"
A="$TMPDIR/modpeg-vm-smoke-a.$$"
B="$TMPDIR/modpeg-vm-smoke-b.$$"
trap 'rm -f "$A" "$B"' EXIT
"$MODPEG" compile crates/grammars/grammars/calc.mpeg --dump-bytecode --out "$A" >/dev/null
"$MODPEG" compile crates/grammars/grammars/calc.mpeg --dump-bytecode --out "$B" >/dev/null
cmp "$A" "$B" || { echo "vm-smoke: disassembly is nondeterministic"; exit 1; }
# The committed golden ends with one newline; the dump has none extra.
if ! diff -u crates/conformance/tests/golden/calc.bytecode "$A" >/dev/null 2>&1; then
    diff -u crates/conformance/tests/golden/calc.bytecode "$A" || true
    echo "vm-smoke: dump differs from tests/golden/calc.bytecode (re-bless via vm_golden)"
    exit 1
fi

echo "== vm-smoke: OK =="
