//! # modpeg — modular PEG parser generator with practical packrat parsing
//!
//! A Rust reproduction of **"Better Extensibility through Modular Syntax"**
//! (Robert Grimm, PLDI 2006 — the *Rats!* parser generator). Grammars are
//! written as composable *modules* over parsing expression grammars:
//! modules can be parameterized, instantiated, imported, and — the paper's
//! signature move — **modified**, so a language extension is just another
//! module that adds, removes, or overrides alternatives in an existing
//! grammar. Parsing is packrat (linear time, unlimited lookahead,
//! scannerless), made practical by the paper's battery of 16 optimizations.
//!
//! ## The five-minute tour
//!
//! ```
//! use modpeg::prelude::*;
//!
//! // 1. Write grammar modules (usually in .mpeg files).
//! let base = r#"
//! module greet;
//! public Node Greeting = <Hi> "hello" Sp Name / <Bye> "goodbye" Sp Name ;
//! String Name = $[a-z]+ ;
//! void Sp = " "+ ;
//! "#;
//!
//! // 2. A language extension is a separate module: no edits to `greet`.
//! let extension = r#"
//! module greet.Hey;
//! modify greet;
//! Greeting += <Hey> "hey" Sp Name / ... ;
//! "#;
//!
//! let composed = r#"
//! module main;
//! import greet;
//! import greet.Hey;
//! public Node Main = Greeting !. ;
//! "#;
//!
//! // 3. Elaborate the composition and compile a packrat parser.
//! let parser = modpeg::compile([base, extension, composed], "main", None)?;
//! let tree = parser.parse("hey world").expect("extension construct parses");
//! assert_eq!(tree.to_sexpr(), "(Main (Greeting.Hey \"world\"))");
//!
//! // The base alternatives still work, of course.
//! assert!(parser.parse("hello world").is_ok());
//! # Ok::<(), modpeg_core::Diagnostics>(())
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | grammar IR, module system, elaboration, analyses, grammar transforms |
//! | [`syntax`] | the `.mpeg` grammar-module language |
//! | [`runtime`] | packrat machinery: memoization, values, state, errors |
//! | [`interp`] | optimization-flagged interpreter ([`OptConfig`]) |
//! | [`codegen`] | Rust parser generation (what `Rats!` does for Java) |
//! | [`grammars`] | grammar library: calc, JSON, Java subset + extensions, SQL, C subset |
//! | [`session`] | incremental parse sessions: memo reuse across edits, pooling, batch parsing |
//!
//! The evaluation harness lives in `modpeg-bench` (see `EXPERIMENTS.md`).

#![warn(missing_docs)]

pub use modpeg_codegen as codegen;
pub use modpeg_core as core;
pub use modpeg_grammars as grammars;
pub use modpeg_interp as interp;
pub use modpeg_runtime as runtime;
pub use modpeg_session as session;
pub use modpeg_syntax as syntax;

pub use modpeg_core::{Diagnostic, Diagnostics, Grammar, GrammarBuilder, ModuleSet};
pub use modpeg_interp::{CompiledGrammar, OptConfig};
pub use modpeg_runtime::{ParseError, SyntaxTree, Value};
pub use modpeg_session::{BatchEngine, ParseSession, SessionPool};

/// One-call convenience: parse grammar-module sources, elaborate from
/// `root` (optionally with start production `start`), and compile a fully
/// optimized packrat parser.
///
/// # Errors
///
/// Returns the collected diagnostics if the sources fail to parse or the
/// composition fails to elaborate.
///
/// # Examples
///
/// ```
/// let parser = modpeg::compile(
///     ["module m; public Word = $[a-z]+ !. ;"],
///     "m",
///     None,
/// )?;
/// assert!(parser.parse("hello").is_ok());
/// # Ok::<(), modpeg_core::Diagnostics>(())
/// ```
pub fn compile<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    root: &str,
    start: Option<&str>,
) -> Result<CompiledGrammar, Diagnostics> {
    compile_with(sources, root, start, OptConfig::all())
}

/// Like [`compile`], with an explicit optimization configuration.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    root: &str,
    start: Option<&str>,
    cfg: OptConfig,
) -> Result<CompiledGrammar, Diagnostics> {
    let set = modpeg_syntax::parse_module_set(sources)?;
    let grammar = set.elaborate(root, start)?;
    CompiledGrammar::compile(&grammar, cfg)
}

/// The usual imports for working with modpeg.
pub mod prelude {
    pub use crate::{compile, compile_with};
    pub use modpeg_core::{Diagnostics, Grammar, GrammarBuilder, ModuleSet, ProdKind};
    pub use modpeg_interp::{CompiledGrammar, OptConfig};
    pub use modpeg_runtime::{Node, NodeKind, ParseError, SyntaxTree, Value};
    pub use modpeg_session::{BatchEngine, ParseSession, SessionPool};
}
