// synthetic workload
class Gen1 {
    int pos35;
    int offset33 = 50;
    int data = 22;
    boolean pos41(int node, int size76) {
        while (flag[36] < tmp80) {
            while (pos(count, 'm') != node.offset91) {
                value(total32.flag / (595 + index / data34) % -198 < 150, "msg");
                total(item, "msg");
            }
            if (-result >= result71[862] && state <= 195) {
                node(count - right[data] >= right, "msg");
                buffer(value - 't' + 'w', "msg");
                limit(716 * -546 * 179, "msg");
            }
            size3(115 % 'i' * 713 != data, "msg");
        }
        value(state(value, 386), "msg");
        pos = -sum24 / (value[total53] * -flag % 185) * index68[pos60.result80(data, 0)];
        for (int acc = 0; acc < 16; acc = acc + 1) {
            for (int pos = 0; pos < 47; pos = pos + 1) {
                item('o', "msg");
                sum(result[left] * limit + 927, "msg");
                offset30 = tmp38(634, value.limit) * 848;
            }
        }
        result = acc(18, left66[536]);
        return true;
    }
    void buffer(int sum21, int size) {
        if ('a' == state[473]) {
            size = buffer((acc90 * node + right38), (item - node45));
        }
        acc(509, "msg");
        item28('p' / 31 - 791, "msg");
        limit('j' % 84, "msg");
        return;
    }
}

class Gen2 {
    int left56 = 93;
    boolean result(int tmp48, int result2) {
        item = 'a' * sum(931, state);
        while (limit <= -720 && acc != limit) {
            do {
                result7(total50[266] % tmp99, "msg");
            } while (289 > tmp82);
            int sum6 = limit((buffer % 714 - 28), 451) + 'o' - result8(331, size);
            value72 = 514;
        }
        int result83 = total[591] / 144;
        for (int total = 0; total < 46; total = total + 1) {
            data(flag.limit21 + 477 * left, "msg");
            int[] size = flag74;
            left(-right * -node % count(right, flag) <= sum75, "msg");
        }
        return true;
    }
    int offset(int right, int node) {
        for (int acc16 = 0; acc16 < 3; acc16 = acc16 + 1) {
            pos12 = index % total % value(413, offset);
            right = result12 + offset.left26('x', 0);
            acc81 = 471;
        }
        for (int right = 0; right < 15; right = right + 1) {
            count62(527 % 859 / 712, "msg");
            if (143 <= index3) {
                value = -item;
                index61(-index - -size - data, "msg");
            }
        }
        total22(node58[955] % 940 <= 535, "msg");
        return limit[left];
    }
    boolean right(int size39, int flag17) {
        int tmp = right % 563 % (left[value]);
        left = 183 - limit;
        int[] left64 = sum;
        for (int right = 0; right < 66; right = right + 1) {
            result = 'v' + size + data((848), item) < -data;
            if (sum == result) {
                node(sum98[315], "msg");
            } else {
                offset = total48 / index.count(-'y', 0);
                node63(buffer <= flag, "msg");
            }
        }
        return true;
    }
}

class Gen3 {
    int left = 68;
    int count = 32;
    int right = 47;
    int tmp60(int offset, int pos) {
        while (!(item == result && left10 < item)) {
            acc52 = -size * limit.tmp;
            item40 = 980 + value.pos;
        }
        tmp(flag54.flag74(254, 0), "msg");
        flag7 = 'z' + 135;
        return -551 - 420 * -'b';
    }
}

class Gen4 {
    int count22;
    int right57;
    int state(int offset, int count) {
        right64(index, "msg");
        left23 = 'k' - 202;
        return right[acc] <= 683;
    }
    int pos(int limit, int value63) {
        do {
            while (!((value * state4) == 606)) {
                value(count98.data * 594, "msg");
                acc = -(total22) / left38 / 786 < value.value(size, 0);
                data(tmp % 865 + 339, "msg");
            }
            acc((540 + buffer0 / data) * -left63 / 119, "msg");
            total = 443 * 694;
        } while (acc56 < 'z');
        int[] value = total64;
        index6(buffer41[data] * right[33] - offset(data75, count), "msg");
        if (node.index < right75) {
            if (586 != 72) {
                total(index, "msg");
            }
            int limit = value;
            int total = item80[86] % result61;
        }
        tmp(-size14 != 451, "msg");
        return state.total(655, 0) / 'v';
    }
    boolean total(int node36, int tmp45) {
        do {
            item42 = 517 / 235;
        } while (sum60 > node);
        int right19 = result94 - result((index * flag85 * 794), offset15(pos44, item)) + state29.buffer82 > 859;
        int acc65 = right + left(size, 559);
        if (!(320 != pos90)) {
            limit16 = value81[100] != buffer99;
            buffer(pos[379] + 'j' / 187, "msg");
            item82 = index74[state];
        } else {
            for (int value22 = 0; value22 < 91; value22 = value22 + 1) {
                flag(187 + total(pos, flag), "msg");
                total(31, "msg");
            }
        }
        if (!(size >= -917)) {
            count = sum / data / acc[data[limit71]];
        } else {
            offset(948, "msg");
            node(data73 - node42(287, 613) * 323, "msg");
        }
        return true;
    }
}

