//! Regression: pathologically nested input must never crash an engine.
//!
//! `data/deep_nesting.json` is a valid JSON document nested 100 000 arrays
//! deep — far beyond what any thread stack can evaluate recursively. Before
//! the resource-governance layer, every engine (interpreter, generated
//! parsers, incremental sessions, backtracking baseline) overflowed its
//! stack on this file and killed the process. Each must now come back with
//! a structured depth verdict instead.

use std::rc::Rc;

use modpeg::interp::{CompiledGrammar, OptConfig};
use modpeg::runtime::{Governor, ParseAbort, ParseFault, DEFAULT_MAX_DEPTH};
use modpeg::session::ParseSession;
use modpeg_baseline::BacktrackParser;

const DEEP: &str = include_str!("data/deep_nesting.json");

/// Sanity: the committed file is what the tests assume it is.
#[test]
fn regression_input_is_deeply_nested_and_valid_shaped() {
    let trimmed = DEEP.trim_end();
    let opens = trimmed.bytes().take_while(|&b| b == b'[').count();
    assert!(opens >= 100_000, "nesting eroded to {opens}");
    assert_eq!(trimmed.len(), 2 * opens + 1);
    assert!(trimmed.ends_with(']'));
}

#[test]
fn interpreter_aborts_gracefully_on_deep_nesting() {
    let g = modpeg::grammars::json_grammar().unwrap();
    for cfg in [OptConfig::none(), OptConfig::all()] {
        let parser = CompiledGrammar::compile(&g, cfg).unwrap();
        let gov = Governor::new();
        let (r, _) = parser.parse_governed(DEEP, &gov);
        match r {
            Err(ParseFault::Abort(ParseAbort::DepthExceeded)) => {}
            other => panic!("expected depth abort, got {other:?}"),
        }
        assert_eq!(gov.tripped(), Some(ParseAbort::DepthExceeded));
    }
}

#[test]
fn generated_parser_aborts_gracefully_on_deep_nesting() {
    let gov = Governor::new();
    let (r, _) = modpeg::grammars::generated::json::parse_governed(DEEP, &gov);
    assert_eq!(r.unwrap_err().abort(), Some(ParseAbort::DepthExceeded));
}

#[test]
fn session_survives_deep_nesting_and_stays_usable() {
    let g = modpeg::grammars::json_grammar().unwrap();
    let parser = Rc::new(CompiledGrammar::compile(&g, OptConfig::incremental()).unwrap());
    let mut session = ParseSession::new(parser, DEEP);
    let fault = session.parse_governed(&Governor::new()).unwrap_err();
    assert_eq!(fault.abort(), Some(ParseAbort::DepthExceeded));
    // The session recovers once the document is sane again.
    session.set_text("[[1, 2], {\"a\": [3]}]");
    assert!(session.parse().is_ok());
}

#[test]
fn baseline_recognizer_reports_depth_instead_of_crashing() {
    let g = modpeg::grammars::json_grammar().unwrap();
    let baseline = BacktrackParser::new(&g);
    let outcome = baseline.recognize_with_depth(DEEP, DEFAULT_MAX_DEPTH);
    assert!(outcome.depth_exceeded);
    // The plain API rejects conservatively rather than dying.
    assert!(baseline.recognize(DEEP).is_err());
}

/// The ceiling exists for nesting, not size: a wide-but-shallow document
/// of the same magnitude parses under the default governor everywhere.
#[test]
fn wide_documents_of_the_same_size_still_parse() {
    let wide = {
        let mut s = String::with_capacity(220_000);
        s.push('[');
        for i in 0..20_000 {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str("[1, 2]");
        }
        s.push(']');
        s
    };
    let gov = Governor::new();
    let (r, _) = modpeg::grammars::generated::json::parse_governed(&wide, &gov);
    assert!(r.is_ok());
    let g = modpeg::grammars::json_grammar().unwrap();
    let parser = CompiledGrammar::compile(&g, OptConfig::all()).unwrap();
    let gov = Governor::new();
    assert!(parser.parse_governed(&wide, &gov).0.is_ok());
}
