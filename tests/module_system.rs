//! Cross-crate integration tests of the module system: composition
//! scenarios exercised end-to-end through the textual module language.

use modpeg::prelude::*;

#[test]
fn two_instances_make_unqualified_references_ambiguous() {
    let parser = modpeg::compile(
        [
            "module util.List(Items);\n\
             public Node List = <L> \"[\" Item (\",\" Item)* \"]\" ;",
            "module digits; public String Item = $[0-9]+ ;",
            "module words;  public String Item = $[a-z]+ ;",
            "module main;\n\
             instantiate util.List(digits) as D;\n\
             instantiate util.List(words) as W;\n\
             public Node Doc = <Doc> List !. ;",
        ],
        "main",
        Some("Doc"),
    );
    // `List` is ambiguous between the two instances — expect a clean error.
    let err = parser.unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn qualified_use_via_wrapper_modules() {
    // The supported pattern for multiple instances: give each instance a
    // wrapper module with a distinct production name.
    let parser = modpeg::compile(
        [
            "module util.List(Items);\n\
             public Node List = <L> \"[\" Item (\",\" Item)* \"]\" ;",
            "module digits; public String Item = $[0-9]+ ;",
            "module main;\n\
             instantiate util.List(digits) as D;\n\
             public Node Doc = <Doc> List !. ;",
        ],
        "main",
        Some("Doc"),
    )
    .expect("single instance resolves fine");
    let tree = parser.parse("[1,2,33]").unwrap();
    assert_eq!(tree.to_sexpr(), "(Doc.Doc (List.L \"1\" [\"2\" \"33\"]))");
}

#[test]
fn chained_modifications_compose_in_import_order() {
    let parser = modpeg::compile(
        [
            "module base; public Node X = <A> \"a\" ;",
            "module ext1; modify base; X += <B> \"b\" ;",
            "module ext2; modify base; X += <C> \"c\" / ... ;",
            "module main; import base; import ext1; import ext2;\n\
             public Node Doc = X !. ;",
        ],
        "main",
        Some("Doc"),
    )
    .unwrap();
    // ext1 appended <B>; ext2 prepended <C>. Doc wraps the X node.
    for (input, kind) in [("a", "X.A"), ("b", "X.B"), ("c", "X.C")] {
        let t = parser.parse(input).unwrap();
        let doc = t.root().as_node().unwrap();
        let x = doc.child(0).and_then(|v| v.as_node()).unwrap();
        assert_eq!(x.kind().as_str(), kind);
    }
}

#[test]
fn override_replaces_and_remove_deletes() {
    let parser = modpeg::compile(
        [
            "module base; public Node X = <A> \"a\" / <B> \"b\" / <C> \"c\" ;",
            "module ext; modify base;\n\
             X -= <B> ;\n\
             X := <Z> \"z\" / ... ;",
            "module main; import base; import ext; public Node Doc = X !. ;",
        ],
        "main",
        Some("Doc"),
    )
    .unwrap();
    assert!(parser.parse("z").is_ok());
    assert!(parser.parse("a").is_ok());
    assert!(parser.parse("b").is_err(), "removed alternative");
    assert!(parser.parse("c").is_ok());
}

#[test]
fn modification_of_unimported_module_does_not_leak() {
    // Two roots over the same base: one imports the extension, one
    // doesn't; each elaboration is independent.
    let base = "module base; public Node X = <A> \"a\" ;";
    let ext = "module ext; modify base; X += <B> \"b\" ;";
    let plain = modpeg::compile(
        [base, ext, "module m1; import base; public Node D = X !. ;"],
        "m1",
        Some("D"),
    )
    .unwrap();
    let extended = modpeg::compile(
        [base, ext, "module m2; import base; import ext; public Node D = X !. ;"],
        "m2",
        Some("D"),
    )
    .unwrap();
    assert!(plain.parse("b").is_err());
    assert!(extended.parse("b").is_ok());
}

#[test]
fn diagnostics_carry_module_context() {
    let err = modpeg::compile(
        ["module m; public Node X = Undefined ;"],
        "m",
        None,
    )
    .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("module m"), "{text}");
    assert!(text.contains("undefined nonterminal `Undefined`"), "{text}");
}

#[test]
fn with_location_option_adds_spans() {
    let parser = modpeg::compile(
        ["module m; option withLocation; public Node X = <A> \"abc\" ;"],
        "m",
        None,
    )
    .unwrap();
    let tree = parser.parse("abc").unwrap();
    let node = tree.root().as_node().unwrap();
    let span = node.span().expect("withLocation forces spans");
    assert_eq!((span.lo(), span.hi()), (0, 3));
}

#[test]
fn start_symbol_resolution_through_imports() {
    let parser = modpeg::compile(
        [
            "module lib; public Node Thing = <T> \"t\" ;",
            "module main; import lib;",
        ],
        "main",
        Some("Thing"),
    )
    .unwrap();
    assert!(parser.parse("t").is_ok());
}

#[test]
fn grammar_builder_and_text_agree() {
    use modpeg::core::{Expr, GrammarBuilder, ProdKind};

    let mut b = GrammarBuilder::new("m");
    b.production(
        "P",
        ProdKind::Node,
        vec![(
            Some("Pair".into()),
            Expr::seq(vec![
                Expr::Ref("W".into()),
                Expr::literal(","),
                Expr::Ref("W".into()),
            ]),
        )],
    );
    b.production(
        "W",
        ProdKind::Text,
        vec![(
            None,
            Expr::Capture(Box::new(Expr::Plus(Box::new(Expr::Class(
                modpeg::core::CharClass::from_ranges(vec![('a', 'z')], false),
            ))))),
        )],
    );
    let built = b.build("P").unwrap();
    let from_text = modpeg::syntax::parse_module_set([
        "module m; public Node P = <Pair> W \",\" W ; String W = $[a-z]+ ;",
    ])
    .unwrap()
    .elaborate("m", Some("P"))
    .unwrap();

    let a = CompiledGrammar::compile(&built, OptConfig::all()).unwrap();
    let c = CompiledGrammar::compile(&from_text, OptConfig::all()).unwrap();
    assert_eq!(
        a.parse("ab,cd").unwrap().to_sexpr(),
        c.parse("ab,cd").unwrap().to_sexpr()
    );
}

#[test]
fn pretty_printed_grammar_reparses_equivalently() {
    // Render the elaborated calc grammar back to text… not as modules but
    // productions; sanity-check the renderer output mentions every
    // production and operator it should.
    let g = modpeg::grammars::calc_grammar().unwrap();
    let text = modpeg::core::grammar_to_string(&g);
    for frag in ["calc.Expr", "calc.Number", "<Add>", "$([0-9]+", "!."] {
        assert!(text.contains(frag), "missing {frag} in:\n{text}");
    }
}
