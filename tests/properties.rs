//! Property-based tests over the whole pipeline.
//!
//! The central invariant of the reproduction: **every optimization is
//! semantics-preserving** — any two optimization configurations accept the
//! same inputs and build structurally identical syntax trees. Plus: no
//! panics on arbitrary input, baseline/packrat agreement, and memoization
//! accounting invariants.

use modpeg::prelude::*;
use proptest::prelude::*;

fn calc_parser(cfg: OptConfig) -> CompiledGrammar {
    let g = modpeg::grammars::calc_grammar().expect("elaborates");
    CompiledGrammar::compile(&g, cfg).expect("compiles")
}

fn json_parser(cfg: OptConfig) -> CompiledGrammar {
    let g = modpeg::grammars::json_grammar().expect("elaborates");
    CompiledGrammar::compile(&g, cfg).expect("compiles")
}

/// Strategy: syntactically valid calculator expressions.
fn calc_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[0-9]{1,4}",
        "[0-9]{1,3}\\.[0-9]{1,3}",
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                proptest::sample::select(vec!["+", "-", "*", "/"]),
                inner.clone()
            )
                .prop_map(|(a, op, b)| format!("{a} {op} {b}")),
            inner.clone().prop_map(|e| format!("({e})")),
            inner.prop_map(|e| format!("-{e}")),
        ]
    })
}

/// Strategy: syntactically valid JSON documents.
fn json_value() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("true".to_owned()),
        Just("false".to_owned()),
        Just("null".to_owned()),
        "-?[0-9]{1,5}",
        "\"[a-z]{0,8}\"",
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|vs| format!("[{}]", vs.join(", "))),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|ms| {
                let body: Vec<String> =
                    ms.into_iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
                format!("{{{}}}", body.join(", "))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calc_all_configs_agree(input in calc_expr()) {
        let reference = calc_parser(OptConfig::none());
        let expected = reference.parse(&input).map(|t| t.to_sexpr());
        for level in [3usize, 6, 9, 11, 13, 16] {
            let parser = calc_parser(OptConfig::cumulative(level));
            let got = parser.parse(&input).map(|t| t.to_sexpr());
            match (&expected, &got) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "level {} diverged", level),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "level {} accept/reject diverged on {:?}", level, input),
            }
        }
    }

    #[test]
    fn json_all_configs_and_generated_agree(input in json_value()) {
        let reference = json_parser(OptConfig::none());
        let expected = reference.parse(&input).map(|t| t.to_sexpr());
        let generated = modpeg::grammars::generated::json::parse(&input).map(|t| t.to_sexpr());
        match (&expected, &generated) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "generated diverged"),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "generated accept/reject diverged on {:?}", input),
        }
        let full = json_parser(OptConfig::all());
        let got = full.parse(&input).map(|t| t.to_sexpr());
        prop_assert_eq!(expected.is_ok(), got.is_ok());
        if let (Ok(a), Ok(b)) = (expected, got) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn arbitrary_input_never_panics(input in "\\PC{0,120}") {
        // Rejection is fine; panics or hangs are not.
        let _ = modpeg::grammars::generated::json::parse(&input);
        let _ = modpeg::grammars::generated::calc::parse(&input);
        let _ = modpeg::grammars::generated::java::parse(&input);
        let _ = modpeg::grammars::generated::c::parse(&input);
    }

    #[test]
    fn arbitrary_grammar_text_never_panics(src in "\\PC{0,200}") {
        // The .mpeg parser must fail gracefully on garbage.
        let _ = modpeg::syntax::parse_modules(&src);
    }

    #[test]
    fn mutated_json_agrees_between_configs(input in json_value(), flip in 0usize..64, byte in 0u8..128) {
        // Mutate one byte; validity may change, but all parsers must agree.
        let mut bytes = input.into_bytes();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = byte;
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            let a = json_parser(OptConfig::none()).parse(&mutated).is_ok();
            let b = json_parser(OptConfig::all()).parse(&mutated).is_ok();
            let c = modpeg::grammars::generated::json::parse(&mutated).is_ok();
            prop_assert_eq!(a, b);
            prop_assert_eq!(a, c);
        }
    }

    #[test]
    fn backtrack_baseline_agrees_on_acceptance(input in calc_expr()) {
        let g = modpeg::grammars::calc_grammar().unwrap();
        let naive = modpeg_baseline::BacktrackParser::new(&g);
        let packrat = calc_parser(OptConfig::all());
        prop_assert_eq!(naive.recognize(&input).is_ok(), packrat.parse(&input).is_ok());
    }

    #[test]
    fn memo_accounting_is_consistent(input in calc_expr()) {
        let parser = calc_parser(OptConfig::all());
        let (result, stats) = parser.parse_with_stats(&input);
        prop_assert!(result.is_ok());
        prop_assert!(stats.memo_hits <= stats.memo_probes);
        // Under full optimization nothing records individual failures.
        prop_assert_eq!(stats.failure_records, 0);
        prop_assert_eq!(stats.strings_built, 0, "text-only mode allocates no strings");
    }

    #[test]
    fn error_offsets_are_in_bounds(input in "\\PC{0,80}") {
        if let Err(e) = modpeg::grammars::generated::json::parse(&input) {
            prop_assert!(e.offset() as usize <= input.len());
        }
    }
}

#[test]
fn trees_are_same_shape_across_text_representations() {
    // text-only off produces OwnedText; trees must still be same-shape.
    let g = modpeg::grammars::calc_grammar().unwrap();
    let spans = CompiledGrammar::compile(&g, OptConfig::all()).unwrap();
    let mut cfg = OptConfig::all();
    cfg.set("text-only", false);
    let owned = CompiledGrammar::compile(&g, cfg).unwrap();
    let input = "1 + 2 * (3 - 4)";
    let a = spans.parse(input).unwrap();
    let b = owned.parse(input).unwrap();
    assert!(a.root().same_shape(b.root(), input));
}
