//! Randomized tests over the whole pipeline.
//!
//! The central invariant of the reproduction: **every optimization is
//! semantics-preserving** — any two optimization configurations accept the
//! same inputs and build structurally identical syntax trees. Plus: no
//! panics on arbitrary input, baseline/packrat agreement, and memoization
//! accounting invariants.
//!
//! Inputs are generated from a seeded PRNG (`modpeg_workload::rng`), so
//! every case reproduces exactly from its seed and the suite builds with
//! no external dependencies.

use modpeg::prelude::*;
use modpeg_workload::rng::StdRng;

fn calc_parser(cfg: OptConfig) -> CompiledGrammar {
    let g = modpeg::grammars::calc_grammar().expect("elaborates");
    CompiledGrammar::compile(&g, cfg).expect("compiles")
}

fn json_parser(cfg: OptConfig) -> CompiledGrammar {
    let g = modpeg::grammars::json_grammar().expect("elaborates");
    CompiledGrammar::compile(&g, cfg).expect("compiles")
}

fn digits(rng: &mut StdRng, min: usize, max: usize) -> String {
    (0..rng.gen_range(min..=max))
        .map(|_| rng.gen_range(b'0'..=b'9') as char)
        .collect()
}

fn lowercase(rng: &mut StdRng, min: usize, max: usize) -> String {
    (0..rng.gen_range(min..=max))
        .map(|_| rng.gen_range(b'a'..=b'z') as char)
        .collect()
}

/// Syntactically valid calculator expression.
fn calc_expr(rng: &mut StdRng, depth: u32) -> String {
    if depth == 0 || rng.gen_ratio(1, 3) {
        if rng.gen_ratio(1, 3) {
            format!("{}.{}", digits(rng, 1, 3), digits(rng, 1, 3))
        } else {
            digits(rng, 1, 4)
        }
    } else {
        match rng.gen_range(0u8..3) {
            0 => {
                let a = calc_expr(rng, depth - 1);
                let b = calc_expr(rng, depth - 1);
                let op = ["+", "-", "*", "/"][rng.gen_range(0..4usize)];
                format!("{a} {op} {b}")
            }
            1 => format!("({})", calc_expr(rng, depth - 1)),
            _ => format!("-{}", calc_expr(rng, depth - 1)),
        }
    }
}

/// Syntactically valid JSON document.
fn json_value(rng: &mut StdRng, depth: u32) -> String {
    if depth == 0 || rng.gen_ratio(1, 3) {
        match rng.gen_range(0u8..5) {
            0 => "true".to_owned(),
            1 => "false".to_owned(),
            2 => "null".to_owned(),
            3 => {
                let sign = if rng.gen_bool() { "-" } else { "" };
                format!("{sign}{}", digits(rng, 1, 5))
            }
            _ => format!("\"{}\"", lowercase(rng, 0, 8)),
        }
    } else if rng.gen_bool() {
        let vs: Vec<String> = (0..rng.gen_range(0usize..4))
            .map(|_| json_value(rng, depth - 1))
            .collect();
        format!("[{}]", vs.join(", "))
    } else {
        let ms: Vec<String> = (0..rng.gen_range(0usize..4))
            .map(|_| {
                let k = lowercase(rng, 1, 6);
                let v = json_value(rng, depth - 1);
                format!("\"{k}\": {v}")
            })
            .collect();
        format!("{{{}}}", ms.join(", "))
    }
}

/// Arbitrary printable text (the "never panic" fuzz alphabet): mostly
/// printable ASCII with occasional multi-byte characters.
fn fuzz_text(rng: &mut StdRng, max_len: usize) -> String {
    let n = rng.gen_range(0..=max_len);
    let mut s = String::new();
    for _ in 0..n {
        if rng.gen_ratio(1, 12) {
            let extras = ['é', 'λ', '→', '\u{1F600}', '中', '\u{00A0}'];
            s.push(extras[rng.gen_range(0..extras.len())]);
        } else {
            s.push(rng.gen_range(b' '..=b'~') as char);
        }
    }
    s
}

#[test]
fn calc_all_configs_agree() {
    let reference = calc_parser(OptConfig::none());
    let parsers: Vec<(usize, CompiledGrammar)> = [3usize, 6, 9, 11, 13, 16]
        .iter()
        .map(|&level| (level, calc_parser(OptConfig::cumulative(level))))
        .collect();
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA1CA11);
        let input = calc_expr(&mut rng, 4);
        let expected = reference.parse(&input).map(|t| t.to_sexpr());
        for (level, parser) in &parsers {
            let got = parser.parse(&input).map(|t| t.to_sexpr());
            match (&expected, &got) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "level {level} diverged on {input:?}"),
                (Err(_), Err(_)) => {}
                _ => panic!("level {level} accept/reject diverged on {input:?}"),
            }
        }
    }
}

#[test]
fn json_all_configs_and_generated_agree() {
    let reference = json_parser(OptConfig::none());
    let full = json_parser(OptConfig::all());
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x15011);
        let input = json_value(&mut rng, 3);
        let expected = reference.parse(&input).map(|t| t.to_sexpr());
        let generated = modpeg::grammars::generated::json::parse(&input).map(|t| t.to_sexpr());
        match (&expected, &generated) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "generated diverged on {input:?}"),
            (Err(_), Err(_)) => {}
            _ => panic!("generated accept/reject diverged on {input:?}"),
        }
        let got = full.parse(&input).map(|t| t.to_sexpr());
        assert_eq!(expected.is_ok(), got.is_ok(), "on {input:?}");
        if let (Ok(a), Ok(b)) = (expected, got) {
            assert_eq!(a, b, "on {input:?}");
        }
    }
}

#[test]
fn arbitrary_input_never_panics() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF022);
        let input = fuzz_text(&mut rng, 120);
        // Rejection is fine; panics or hangs are not.
        let _ = modpeg::grammars::generated::json::parse(&input);
        let _ = modpeg::grammars::generated::calc::parse(&input);
        let _ = modpeg::grammars::generated::java::parse(&input);
        let _ = modpeg::grammars::generated::c::parse(&input);
    }
}

#[test]
fn arbitrary_grammar_text_never_panics() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6172B);
        let src = fuzz_text(&mut rng, 200);
        // The .mpeg parser must fail gracefully on garbage.
        let _ = modpeg::syntax::parse_modules(&src);
    }
}

#[test]
fn mutated_json_agrees_between_configs() {
    let none = json_parser(OptConfig::none());
    let all = json_parser(OptConfig::all());
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3107);
        let input = json_value(&mut rng, 3);
        // Mutate one byte; validity may change, but all parsers must agree.
        let mut bytes = input.into_bytes();
        if !bytes.is_empty() {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0u8..128);
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            let a = none.parse(&mutated).is_ok();
            let b = all.parse(&mutated).is_ok();
            let c = modpeg::grammars::generated::json::parse(&mutated).is_ok();
            assert_eq!(a, b, "on {mutated:?}");
            assert_eq!(a, c, "on {mutated:?}");
        }
    }
}

#[test]
fn backtrack_baseline_agrees_on_acceptance() {
    let g = modpeg::grammars::calc_grammar().unwrap();
    let naive = modpeg_baseline::BacktrackParser::new(&g);
    let packrat = calc_parser(OptConfig::all());
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAC2);
        let input = calc_expr(&mut rng, 3);
        assert_eq!(
            naive.recognize(&input).is_ok(),
            packrat.parse(&input).is_ok(),
            "on {input:?}"
        );
    }
}

#[test]
fn memo_accounting_is_consistent() {
    let parser = calc_parser(OptConfig::all());
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACC7);
        let input = calc_expr(&mut rng, 4);
        let (result, stats) = parser.parse_with_stats(&input);
        assert!(result.is_ok(), "on {input:?}");
        assert!(stats.memo_hits <= stats.memo_probes);
        // Under full optimization nothing records individual failures.
        assert_eq!(stats.failure_records, 0);
        assert_eq!(stats.strings_built, 0, "text-only mode allocates no strings");
    }
}

#[test]
fn error_offsets_are_in_bounds() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0FF5);
        let input = fuzz_text(&mut rng, 80);
        if let Err(e) = modpeg::grammars::generated::json::parse(&input) {
            assert!(e.offset() as usize <= input.len(), "on {input:?}");
        }
    }
}

#[test]
fn trees_are_same_shape_across_text_representations() {
    // text-only off produces OwnedText; trees must still be same-shape.
    let g = modpeg::grammars::calc_grammar().unwrap();
    let spans = CompiledGrammar::compile(&g, OptConfig::all()).unwrap();
    let mut cfg = OptConfig::all();
    cfg.set("text-only", false);
    let owned = CompiledGrammar::compile(&g, cfg).unwrap();
    let input = "1 + 2 * (3 - 4)";
    let a = spans.parse(input).unwrap();
    let b = owned.parse(input).unwrap();
    assert!(a.root().same_shape(b.root(), input));
}
