//! Randomized semantic-preservation testing: generate random well-formed
//! grammars, then check that every optimization configuration accepts the
//! same inputs and produces structurally identical trees on random inputs.
//!
//! The generated grammars are acyclic (production *i* only references
//! later productions) which sidesteps left-recursion and nullable-star
//! hazards by construction while still covering every expression operator
//! and value-kind combination. Grammar shapes come from a seeded PRNG
//! (`modpeg_workload::rng`) so every case reproduces from its seed.

use modpeg::core::{CharClass, Expr, GrammarBuilder, ProdKind};
use modpeg::prelude::*;
use modpeg_workload::rng::StdRng;

type E = Expr<String>;

const N_PRODS: usize = 5;

/// A guaranteed-consuming atom (safe inside repetitions).
fn consuming_atom(rng: &mut StdRng) -> E {
    match rng.gen_range(0u8..4) {
        0 => {
            let lits = ["a", "b", "c", "ab", "ba"];
            E::literal(lits[rng.gen_range(0..lits.len())])
        }
        1 => E::Class(CharClass::from_ranges(vec![('a', 'b')], false)),
        2 => E::Class(CharClass::from_ranges(vec![('c', 'c')], true)),
        _ => E::Any,
    }
}

/// An arbitrary expression usable in production `idx` (may reference
/// productions with larger indices only).
fn expr(rng: &mut StdRng, idx: usize, depth: u32) -> E {
    let leaf = |rng: &mut StdRng| {
        if idx + 1 < N_PRODS && rng.gen_ratio(1, 3) {
            E::Ref(format!("P{}", rng.gen_range(idx + 1..N_PRODS)))
        } else {
            consuming_atom(rng)
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Weighted: 4 parts leaf, 2 seq, 2 choice, 1 each of the rest (total 14).
    match rng.gen_range(0u8..14) {
        0..=3 => leaf(rng),
        4 | 5 => {
            let n = rng.gen_range(1usize..4);
            E::seq((0..n).map(|_| expr(rng, idx, depth - 1)).collect())
        }
        6 | 7 => {
            let n = rng.gen_range(1usize..4);
            E::choice((0..n).map(|_| expr(rng, idx, depth - 1)).collect())
        }
        8 => E::Opt(Box::new(expr(rng, idx, depth - 1))),
        9 => E::Star(Box::new(consuming_atom(rng))),
        10 => E::Plus(Box::new(consuming_atom(rng))),
        11 => E::Not(Box::new(expr(rng, idx, depth - 1))),
        12 => E::And(Box::new(expr(rng, idx, depth - 1))),
        _ => {
            if rng.gen_bool() {
                E::Capture(Box::new(expr(rng, idx, depth - 1)))
            } else {
                E::Void(Box::new(expr(rng, idx, depth - 1)))
            }
        }
    }
}

fn kind(rng: &mut StdRng) -> ProdKind {
    [ProdKind::Node, ProdKind::Text, ProdKind::Void][rng.gen_range(0..3usize)]
}

/// One alternative: an optional `<Label>` plus its expression.
type Alt = (Option<String>, E);

#[derive(Debug, Clone)]
struct RandGrammar {
    prods: Vec<(ProdKind, Vec<Alt>)>,
}

fn rand_grammar(rng: &mut StdRng) -> RandGrammar {
    let mut prods: Vec<(ProdKind, Vec<Alt>)> = (0..N_PRODS)
        .map(|idx| {
            let k = kind(rng);
            let n_alts = rng.gen_range(1usize..3);
            let alts = (0..n_alts)
                .map(|_| {
                    let label = if rng.gen_bool() {
                        Some(format!("L{idx}"))
                    } else {
                        None
                    };
                    (label, expr(rng, idx, 2))
                })
                .collect();
            (k, alts)
        })
        .collect();
    // Alternative labels must be unique per production; the generator
    // reuses one label name, so dedup by keeping only the first.
    for (_, alts) in prods.iter_mut() {
        let mut seen = false;
        for (label, _) in alts.iter_mut() {
            if label.is_some() {
                if seen {
                    *label = None;
                }
                seen = true;
            }
        }
    }
    // The root must be a Node production for LR friendliness (not
    // needed here, but keeps trees interesting).
    prods[0].0 = ProdKind::Node;
    RandGrammar { prods }
}

fn rand_input(rng: &mut StdRng, max_len: usize) -> String {
    (0..rng.gen_range(0..=max_len))
        .map(|_| rng.gen_range(b'a'..=b'c') as char)
        .collect()
}

fn build(rg: &RandGrammar) -> Option<Grammar> {
    let mut b = GrammarBuilder::new("rand");
    for (i, (kind, alts)) in rg.prods.iter().enumerate() {
        b.production(format!("P{i}"), *kind, alts.clone());
    }
    // Some random grammars are still rejected (e.g. a nullable repetition
    // introduced through a void reference chain); that's fine — skip them.
    b.build("P0").ok()
}

#[test]
fn optimizations_preserve_semantics_on_random_grammars() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x62A3);
        let rg = rand_grammar(&mut rng);
        let inputs: Vec<String> = (0..8).map(|_| rand_input(&mut rng, 10)).collect();
        let Some(grammar) = build(&rg) else {
            continue; // rejected by well-formedness checks
        };
        let reference =
            CompiledGrammar::compile(&grammar, OptConfig::none()).expect("compiles");
        let configs: Vec<CompiledGrammar> = [4usize, 8, 11, 14, 16]
            .iter()
            .map(|n| {
                CompiledGrammar::compile(&grammar, OptConfig::cumulative(*n)).expect("compiles")
            })
            .collect();
        for input in &inputs {
            // parse_prefix succeeds far more often than full-input parse on
            // random grammars, so compare both to avoid a vacuous test.
            let expected = reference.parse(input).map(|t| t.to_sexpr());
            let expected_prefix = reference
                .parse_prefix(input)
                .map(|(t, end)| (t.to_sexpr(), end))
                .ok();
            for (i, c) in configs.iter().enumerate() {
                let got = c.parse(input).map(|t| t.to_sexpr());
                match (&expected, &got) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a, b,
                        "config #{i} diverged on {input:?} for grammar {rg:?}"
                    ),
                    (Err(_), Err(_)) => {}
                    _ => panic!(
                        "config #{i} accept/reject diverged on {input:?} for grammar {rg:?}"
                    ),
                }
                let got_prefix = c
                    .parse_prefix(input)
                    .map(|(t, end)| (t.to_sexpr(), end))
                    .ok();
                assert_eq!(
                    expected_prefix, got_prefix,
                    "config #{i} prefix-parse diverged on {input:?} for grammar {rg:?}"
                );
            }
        }
    }
}

#[test]
fn backtracker_agrees_with_packrat_on_random_grammars() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBACC);
        let rg = rand_grammar(&mut rng);
        let inputs: Vec<String> = (0..6).map(|_| rand_input(&mut rng, 8)).collect();
        let Some(grammar) = build(&rg) else {
            continue;
        };
        let packrat = CompiledGrammar::compile(&grammar, OptConfig::all()).expect("compiles");
        let naive = modpeg_baseline::BacktrackParser::new(&grammar);
        for input in &inputs {
            assert_eq!(
                naive.recognize(input).is_ok(),
                packrat.parse(input).is_ok(),
                "acceptance diverged on {input:?} for grammar {rg:?}"
            );
        }
    }
}
