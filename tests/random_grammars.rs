//! Randomized semantic-preservation testing: generate random well-formed
//! grammars, then check that every optimization configuration accepts the
//! same inputs and produces structurally identical trees on random inputs.
//!
//! The generated grammars are acyclic (production *i* only references
//! later productions) which sidesteps left-recursion and nullable-star
//! hazards by construction while still covering every expression operator
//! and value-kind combination.

use modpeg::core::{CharClass, Expr, GrammarBuilder, ProdKind};
use modpeg::prelude::*;
use proptest::prelude::*;

type E = Expr<String>;

const N_PRODS: usize = 5;

/// A guaranteed-consuming atom (safe inside repetitions).
fn consuming_atom() -> impl Strategy<Value = E> {
    prop_oneof![
        proptest::sample::select(vec!["a", "b", "c", "ab", "ba"]).prop_map(E::literal),
        Just(E::Class(CharClass::from_ranges(vec![('a', 'b')], false))),
        Just(E::Class(CharClass::from_ranges(vec![('c', 'c')], true))),
        Just(E::Any),
    ]
}

/// An arbitrary expression usable in production `idx` (may reference
/// productions with larger indices only).
fn expr(idx: usize, depth: u32) -> BoxedStrategy<E> {
    let refs: Vec<E> = (idx + 1..N_PRODS).map(|j| E::Ref(format!("P{j}"))).collect();
    let mut leaves = vec![consuming_atom().boxed()];
    if !refs.is_empty() {
        leaves.push(proptest::sample::select(refs).boxed());
    }
    let leaf = proptest::strategy::Union::new(leaves);
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = expr(idx, depth - 1);
    prop_oneof![
        4 => leaf,
        2 => proptest::collection::vec(expr(idx, depth - 1), 1..4).prop_map(E::seq),
        2 => proptest::collection::vec(expr(idx, depth - 1), 1..4).prop_map(E::choice),
        1 => inner.clone().prop_map(|e| E::Opt(Box::new(e))),
        1 => consuming_atom().prop_map(|e| E::Star(Box::new(e))),
        1 => consuming_atom().prop_map(|e| E::Plus(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Not(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::And(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Capture(Box::new(e))),
        1 => inner.prop_map(|e| E::Void(Box::new(e))),
    ]
    .boxed()
}

fn kind() -> impl Strategy<Value = ProdKind> {
    proptest::sample::select(vec![ProdKind::Node, ProdKind::Text, ProdKind::Void])
}

#[derive(Debug, Clone)]
struct RandGrammar {
    prods: Vec<(ProdKind, Vec<(Option<String>, E)>)>,
}

fn rand_grammar() -> impl Strategy<Value = RandGrammar> {
    let prod = |idx: usize| {
        (
            kind(),
            proptest::collection::vec(
                (proptest::option::of(Just(format!("L{idx}"))), expr(idx, 2)),
                1..3,
            ),
        )
    };
    (prod(0), prod(1), prod(2), prod(3), prod(4)).prop_map(|(a, b, c, d, e)| {
        let mut prods = vec![a, b, c, d, e];
        // Alternative labels must be unique per production; the strategy
        // reuses one label name, so dedup by keeping only the first.
        for (_, alts) in prods.iter_mut() {
            let mut seen = false;
            for (label, _) in alts.iter_mut() {
                if label.is_some() {
                    if seen {
                        *label = None;
                    }
                    seen = true;
                }
            }
        }
        // The root must be a Node production for LR friendliness (not
        // needed here, but keeps trees interesting).
        prods[0].0 = ProdKind::Node;
        RandGrammar { prods }
    })
}

fn build(rg: &RandGrammar) -> Option<Grammar> {
    let mut b = GrammarBuilder::new("rand");
    for (i, (kind, alts)) in rg.prods.iter().enumerate() {
        b.production(format!("P{i}"), *kind, alts.clone());
    }
    // Some random grammars are still rejected (e.g. a nullable repetition
    // introduced through a void reference chain); that's fine — skip them.
    b.build("P0").ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizations_preserve_semantics_on_random_grammars(
        rg in rand_grammar(),
        inputs in proptest::collection::vec("[abc]{0,10}", 8),
    ) {
        let Some(grammar) = build(&rg) else {
            return Ok(()); // rejected by well-formedness checks
        };
        let reference = CompiledGrammar::compile(&grammar, OptConfig::none())
            .expect("compiles");
        let configs: Vec<CompiledGrammar> = [4usize, 8, 11, 14, 16]
            .iter()
            .map(|n| CompiledGrammar::compile(&grammar, OptConfig::cumulative(*n)).expect("compiles"))
            .collect();
        for input in &inputs {
            // parse_prefix succeeds far more often than full-input parse on
            // random grammars, so compare both to avoid a vacuous test.
            let expected = reference.parse(input).map(|t| t.to_sexpr());
            let expected_prefix = reference
                .parse_prefix(input)
                .map(|(t, end)| (t.to_sexpr(), end))
                .ok();
            for (i, c) in configs.iter().enumerate() {
                let got = c.parse(input).map(|t| t.to_sexpr());
                match (&expected, &got) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a, b,
                        "config #{} diverged on {:?} for grammar {:?}",
                        i, input, rg
                    ),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "config #{} accept/reject diverged on {:?} for grammar {:?}",
                        i, input, rg
                    ),
                }
                let got_prefix = c
                    .parse_prefix(input)
                    .map(|(t, end)| (t.to_sexpr(), end))
                    .ok();
                prop_assert_eq!(
                    &expected_prefix, &got_prefix,
                    "config #{} prefix-parse diverged on {:?} for grammar {:?}",
                    i, input, rg
                );
            }
        }
    }

    #[test]
    fn backtracker_agrees_with_packrat_on_random_grammars(
        rg in rand_grammar(),
        inputs in proptest::collection::vec("[abc]{0,8}", 6),
    ) {
        let Some(grammar) = build(&rg) else {
            return Ok(());
        };
        let packrat = CompiledGrammar::compile(&grammar, OptConfig::all()).expect("compiles");
        let naive = modpeg_baseline::BacktrackParser::new(&grammar);
        for input in &inputs {
            prop_assert_eq!(
                naive.recognize(input).is_ok(),
                packrat.parse(input).is_ok(),
                "acceptance diverged on {:?} for grammar {:?}",
                input,
                rg
            );
        }
    }
}
