//! Property test for the self-hosting grammar: random modules, rendered
//! by the canonical formatter, must be accepted by the generated parser
//! for the module language — and rejected exactly when the hand-written
//! parser rejects.

use modpeg::core::{CharClass, Expr};
use proptest::prelude::*;

type E = Expr<String>;

fn expr(depth: u32) -> BoxedStrategy<E> {
    let leaf = prop_oneof![
        "[A-Z][a-zA-Z0-9]{0,4}".prop_map(E::Ref),
        proptest::sample::select(vec!["a", "if", "+=", "\"q\"", "\\", "\n\t"]).prop_map(E::literal),
        Just(E::Any),
        Just(E::Class(CharClass::from_ranges(vec![('a', 'z'), ('0', '9')], false))),
        Just(E::Class(CharClass::from_ranges(vec![(']', ']'), ('-', '-')], true))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = expr(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => proptest::collection::vec(expr(depth - 1), 1..3).prop_map(E::seq),
        1 => proptest::collection::vec(expr(depth - 1), 2..3).prop_map(E::choice),
        1 => inner.clone().prop_map(|e| E::Opt(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Plus(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Not(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::Capture(Box::new(e))),
        1 => inner.clone().prop_map(|e| E::StateScope(Box::new(e))),
        1 => inner.prop_map(|e| E::StateDefine(Box::new(e))),
    ]
    .boxed()
}

fn module_text() -> impl Strategy<Value = String> {
    (
        "[a-z][a-z0-9]{0,4}",
        proptest::collection::vec(("[A-Z][a-zA-Z0-9]{0,4}", expr(2)), 1..4),
    )
        .prop_map(|(name, prods)| {
            let mut m = modpeg::core::ModuleAst::new(name);
            for (i, (pname, e)) in prods.into_iter().enumerate() {
                m.productions.push(modpeg::core::ProdClause::define(
                    modpeg::core::Attrs::default(),
                    modpeg::core::ProdKind::Node,
                    format!("{pname}{i}"),
                    vec![modpeg::core::AltAst::Alt {
                        label: None,
                        expr: e,
                    }],
                ));
            }
            modpeg::syntax::format_module(&m)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn self_hosted_grammar_accepts_formatted_random_modules(text in module_text()) {
        // The formatter's output reparses with the hand parser…
        modpeg::syntax::parse_modules(&text)
            .unwrap_or_else(|e| panic!("hand parser rejected formatter output: {e}\n{text}"));
        // …and the self-hosted generated parser agrees.
        modpeg::grammars::generated::mpeg::parse(&text)
            .unwrap_or_else(|e| panic!("self-hosted grammar rejected: {e}\n{text}"));
    }

    #[test]
    fn self_hosted_grammar_agrees_on_random_garbage(text in "[ -~\\n]{0,80}") {
        // For printable-ASCII garbage the two parsers must agree on
        // accept/reject (the documented liberalities involve constructs
        // this alphabet can express only via `[z-a]`-style ranges, which
        // are rare enough to filter).
        let hand = modpeg::syntax::parse_modules(&text).is_ok();
        let hosted = modpeg::grammars::generated::mpeg::parse(&text).is_ok();
        if hand != hosted {
            // Permit the documented divergence: inverted class ranges and
            // out-of-range \u escapes are value-level checks.
            let value_level = text.contains('[') || text.contains("\\u");
            prop_assert!(
                value_level,
                "acceptance diverged (hand={}, hosted={}) on {:?}",
                hand, hosted, text
            );
        }
    }
}
