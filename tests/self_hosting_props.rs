//! Randomized test for the self-hosting grammar: random modules, rendered
//! by the canonical formatter, must be accepted by the generated parser
//! for the module language — and rejected exactly when the hand-written
//! parser rejects. Cases come from a seeded PRNG (`modpeg_workload::rng`)
//! so every failure reproduces from its seed.

use modpeg::core::{CharClass, Expr};
use modpeg_workload::rng::StdRng;

type E = Expr<String>;

fn upper_ident(rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push(rng.gen_range(b'A'..=b'Z') as char);
    for _ in 0..rng.gen_range(0usize..=4) {
        let c = match rng.gen_range(0u8..3) {
            0 => rng.gen_range(b'a'..=b'z'),
            1 => rng.gen_range(b'A'..=b'Z'),
            _ => rng.gen_range(b'0'..=b'9'),
        };
        s.push(c as char);
    }
    s
}

fn lower_ident(rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push(rng.gen_range(b'a'..=b'z') as char);
    for _ in 0..rng.gen_range(0usize..=4) {
        let c = if rng.gen_ratio(3, 4) {
            rng.gen_range(b'a'..=b'z')
        } else {
            rng.gen_range(b'0'..=b'9')
        };
        s.push(c as char);
    }
    s
}

fn expr(rng: &mut StdRng, depth: u32) -> E {
    let leaf = |rng: &mut StdRng| match rng.gen_range(0u8..5) {
        0 => E::Ref(upper_ident(rng)),
        1 => {
            let lits = ["a", "if", "+=", "\"q\"", "\\", "\n\t"];
            E::literal(lits[rng.gen_range(0..lits.len())])
        }
        2 => E::Any,
        3 => E::Class(CharClass::from_ranges(vec![('a', 'z'), ('0', '9')], false)),
        _ => E::Class(CharClass::from_ranges(vec![(']', ']'), ('-', '-')], true)),
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Weighted: 3 parts leaf, 1 part each combinator (total 11).
    match rng.gen_range(0u8..11) {
        0..=2 => leaf(rng),
        3 => {
            let n = rng.gen_range(1usize..3);
            E::seq((0..n).map(|_| expr(rng, depth - 1)).collect())
        }
        4 => E::choice(vec![expr(rng, depth - 1), expr(rng, depth - 1)]),
        5 => E::Opt(Box::new(expr(rng, depth - 1))),
        6 => E::Plus(Box::new(expr(rng, depth - 1))),
        7 => E::Not(Box::new(expr(rng, depth - 1))),
        8 => E::Capture(Box::new(expr(rng, depth - 1))),
        9 => E::StateScope(Box::new(expr(rng, depth - 1))),
        _ => E::StateDefine(Box::new(expr(rng, depth - 1))),
    }
}

fn module_text(rng: &mut StdRng) -> String {
    let name = lower_ident(rng);
    let n_prods = rng.gen_range(1usize..4);
    let mut m = modpeg::core::ModuleAst::new(name);
    for i in 0..n_prods {
        let pname = upper_ident(rng);
        let e = expr(rng, 2);
        m.productions.push(modpeg::core::ProdClause::define(
            modpeg::core::Attrs::default(),
            modpeg::core::ProdKind::Node,
            format!("{pname}{i}"),
            vec![modpeg::core::AltAst::Alt {
                label: None,
                expr: e,
            }],
        ));
    }
    modpeg::syntax::format_module(&m)
}

#[test]
fn self_hosted_grammar_accepts_formatted_random_modules() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1F);
        let text = module_text(&mut rng);
        // The formatter's output reparses with the hand parser…
        modpeg::syntax::parse_modules(&text)
            .unwrap_or_else(|e| panic!("hand parser rejected formatter output: {e}\n{text}"));
        // …and the self-hosted generated parser agrees.
        modpeg::grammars::generated::mpeg::parse(&text)
            .unwrap_or_else(|e| panic!("self-hosted grammar rejected: {e}\n{text}"));
    }
}

#[test]
fn self_hosted_grammar_agrees_on_random_garbage() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A2BA6E);
        let n = rng.gen_range(0usize..=80);
        let text: String = (0..n)
            .map(|_| {
                if rng.gen_ratio(1, 20) {
                    '\n'
                } else {
                    rng.gen_range(b' '..=b'~') as char
                }
            })
            .collect();
        // For printable-ASCII garbage the two parsers must agree on
        // accept/reject (the documented liberalities involve constructs
        // this alphabet can express only via `[z-a]`-style ranges, which
        // are rare enough to filter).
        let hand = modpeg::syntax::parse_modules(&text).is_ok();
        let hosted = modpeg::grammars::generated::mpeg::parse(&text).is_ok();
        if hand != hosted {
            // Permit the documented divergence: inverted class ranges and
            // out-of-range \u escapes are value-level checks.
            let value_level = text.contains('[') || text.contains("\\u");
            assert!(
                value_level,
                "acceptance diverged (hand={hand}, hosted={hosted}) on {text:?}"
            );
        }
    }
}
