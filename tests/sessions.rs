//! Cross-crate integration tests of the incremental session layer as
//! exposed through the `modpeg` facade (the README example, essentially).

use std::rc::Rc;

use modpeg::prelude::*;

fn calc_parser() -> Rc<CompiledGrammar> {
    let grammar = modpeg::grammars::calc_grammar().expect("calc elaborates");
    Rc::new(
        CompiledGrammar::compile(&grammar, OptConfig::incremental()).expect("calc compiles"),
    )
}

#[test]
fn facade_session_reuses_memo_across_edits() {
    let parser = calc_parser();
    let doc = "(1 + 2) * (3 + 4) - (5 * 6) + 7";
    let mut session = ParseSession::new(Rc::clone(&parser), doc);
    assert!(session.is_incremental());
    let before = session.parse().expect("parses").to_sexpr();

    // Replace the trailing "7" — the parenthesized groups to the left
    // never looked past themselves, so their memo columns survive.
    session.apply_edit(30..31, "(8 - 9)");
    let after = session.parse().expect("reparses");
    assert_ne!(before, after.to_sexpr());
    assert_eq!(
        after.to_sexpr(),
        parser
            .parse("(1 + 2) * (3 + 4) - (5 * 6) + (8 - 9)")
            .expect("parses")
            .to_sexpr(),
        "incremental reparse agrees with a scratch parse"
    );
    assert!(
        session.last_stats().memo_columns_reused > 0,
        "the edit left reusable columns: {:?}",
        session.last_stats()
    );
}

#[test]
fn facade_pool_and_batch_engine_are_reachable() {
    let mut pool = SessionPool::new(calc_parser());
    let mut session = pool.session("(1 + 2) * 3");
    session.parse().expect("parses");
    pool.recycle(session);
    assert_eq!(pool.pooled(), 1);

    let docs = ["1+1", "2 * (3 + 4)", "9"];
    let results = BatchEngine::new(2).parse_corpus(
        || {
            let grammar = modpeg::grammars::calc_grammar().expect("calc elaborates");
            CompiledGrammar::compile(&grammar, OptConfig::all()).expect("calc compiles")
        },
        &docs,
    );
    assert_eq!(results.len(), docs.len());
    assert!(results.iter().all(|r| r.ok), "{results:?}");
}
