//! Toolchain integration: the formatter and linter against the real
//! grammar library — the strongest fixtures we have.

use modpeg::prelude::*;

fn all_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("calc", modpeg::grammars::sources::CALC),
        ("json", modpeg::grammars::sources::JSON),
        ("java", modpeg::grammars::sources::JAVA),
        ("java_ext", modpeg::grammars::sources::JAVA_EXT),
        ("c", modpeg::grammars::sources::C),
        ("sql", modpeg::grammars::sources::SQL),
        ("java_sql", modpeg::grammars::sources::JAVA_SQL),
        ("tiny", modpeg::grammars::sources::TINY),
    ]
}

#[test]
fn formatter_is_a_fixpoint_on_the_library() {
    for (name, src) in all_sources() {
        let parsed = modpeg::syntax::parse_modules(src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let once = modpeg::syntax::format_modules(&parsed);
        let reparsed = modpeg::syntax::parse_modules(&once)
            .unwrap_or_else(|e| panic!("{name} (formatted): {e}\n{once}"));
        let twice = modpeg::syntax::format_modules(&reparsed);
        assert_eq!(once, twice, "{name}: formatter not a fixpoint");
    }
}

#[test]
fn formatted_library_grammars_elaborate_identically() {
    // Formatting must not change grammar semantics: elaborate both the
    // original and the formatted Java grammar and compare parser output.
    let original = modpeg::grammars::java_grammar().unwrap();
    let formatted_src = modpeg::syntax::format_modules(
        &modpeg::syntax::parse_modules(modpeg::grammars::sources::JAVA).unwrap(),
    );
    let formatted = modpeg::syntax::parse_module_set([formatted_src.as_str()])
        .unwrap()
        .elaborate("java.Program", Some("Program"))
        .unwrap();
    let a = CompiledGrammar::compile(&original, OptConfig::all()).unwrap();
    let b = CompiledGrammar::compile(&formatted, OptConfig::all()).unwrap();
    let program = modpeg_workload::java_program(9, 6_000);
    assert_eq!(
        a.parse(&program).unwrap().to_sexpr(),
        b.parse(&program).unwrap().to_sexpr()
    );
}

#[test]
fn library_grammars_are_lint_clean_modulo_known_exports() {
    // The base grammars keep a handful of intentionally unreferenced
    // lexical productions (exports for extension modules). No grammar may
    // carry *shadowing* or *duplicate* warnings.
    for (name, grammar) in [
        ("calc", modpeg::grammars::calc_grammar().unwrap()),
        ("json", modpeg::grammars::json_grammar().unwrap()),
        ("java", modpeg::grammars::java_grammar().unwrap()),
        ("java-extended", modpeg::grammars::java_extended_grammar().unwrap()),
        ("c", modpeg::grammars::c_grammar().unwrap()),
        ("sql", modpeg::grammars::sql_grammar().unwrap()),
        ("java-sql", modpeg::grammars::java_sql_grammar().unwrap()),
    ] {
        for w in modpeg::core::analysis::lint(&grammar) {
            let msg = w.message();
            assert!(
                msg.contains("unreachable from the root"),
                "{name}: unexpected lint warning: {msg}"
            );
        }
    }
}

#[test]
fn extensions_consume_previously_unused_exports() {
    // COLON is exported by java.Lexical for extensions: unreferenced in
    // the base grammar, referenced once foreach/assert are composed.
    let base = modpeg::grammars::java_grammar().unwrap();
    let base_warnings: Vec<String> = modpeg::core::analysis::lint(&base)
        .iter()
        .map(|w| w.message().to_owned())
        .collect();
    assert!(
        base_warnings.iter().any(|m| m.contains("COLON")),
        "{base_warnings:?}"
    );
    let extended = modpeg::grammars::java_extended_grammar().unwrap();
    let ext_warnings: Vec<String> = modpeg::core::analysis::lint(&extended)
        .iter()
        .map(|w| w.message().to_owned())
        .collect();
    assert!(
        !ext_warnings.iter().any(|m| m.contains("COLON")),
        "{ext_warnings:?}"
    );
}

#[test]
fn tree_navigation_on_real_parses() {
    let g = modpeg::grammars::java_grammar().unwrap();
    let mut cfg = OptConfig::all();
    cfg.set("location-elision", false); // keep spans for node_at
    let parser = CompiledGrammar::compile(&g, cfg).unwrap();
    let src = "class A { int f(int x) { return x + 1; } }";
    let tree = parser.parse(src).unwrap();

    // Find the method node, then locate the `+` expression by offset.
    let methods = tree.root().find_kind("Member.Method");
    assert_eq!(methods.len(), 1);
    let plus_offset = src.find('+').unwrap() as u32;
    let node = tree.node_at(plus_offset).expect("a node covers the +");
    assert_eq!(node.kind().as_str(), "AddExpr.Add");
    let path: Vec<&str> = tree
        .path_to(plus_offset)
        .iter()
        .map(|n| n.kind().as_str())
        .collect();
    assert!(path.starts_with(&["CompilationUnit.Unit", "ClassDecl.Class"]), "{path:?}");
    assert_eq!(*path.last().unwrap(), "AddExpr.Add");
}
